"""Transaction validity: the four rules of paper §2.

"In order for a transaction to be valid (a prerequisite for inclusion in the
blockchain):

1. The sum of the outputs must equal the sum of the inputs (minus a
   transaction fee ...).
2. Each input amount must be equal to the output amount it identifies.
3. All the inputs must identify distinct unspent outputs.
4. All of the inputs' digital signatures must be valid signatures of the
   full transaction for the public key of the output being spent."

Rule 2 is how Bitcoin's ledger model works by construction (an input *is*
the whole prior output); rules 1, 3, 4 are checked here against a UTXO view.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

from repro import obs
from repro.bitcoin import sigcache
from repro.bitcoin.script import Script, execute_script
from repro.bitcoin.sighash import SighashCache, signature_hash
from repro.bitcoin.standard import ScriptType, classify
from repro.bitcoin.transaction import MAX_MONEY, Transaction
from repro.bitcoin.utxo import COINBASE_MATURITY, UTXOSet
from repro.crypto.ecdsa import Signature, batch_verify, verify as ecdsa_verify
from repro.crypto.secp256k1 import Point


class ValidationError(Exception):
    """A transaction or block violates a consensus rule."""


LOCKTIME_THRESHOLD = 500_000_000  # below: block height; above: unix time


def is_final(tx: Transaction, height: int, block_time: int) -> bool:
    """Is the transaction final (includable) at this height/time?

    nLockTime semantics: a transaction with ``locktime != 0`` may not enter
    a block until the lock expires — ``locktime < height`` for small values,
    ``locktime < block_time`` for timestamps — unless every input opts out
    with a final sequence number.  This is the native Bitcoin mechanism for
    contracts "that can be reversed if not completed by a deadline" that
    the paper's §8 contrasts with Typecoin's escrow approach.
    """
    if tx.locktime == 0:
        return True
    from repro.bitcoin.transaction import SEQUENCE_FINAL

    if all(txin.sequence == SEQUENCE_FINAL for txin in tx.vin):
        return True
    cutoff = height if tx.locktime < LOCKTIME_THRESHOLD else block_time
    return tx.locktime < cutoff


@dataclass(frozen=True)
class TxValidity:
    """Outcome of full input validation: the fee the transaction pays."""

    fee: int


def check_transaction(tx: Transaction) -> None:
    """Context-free structural checks (no UTXO view needed)."""
    if not tx.vin:
        raise ValidationError("transaction has no inputs")
    if not tx.vout:
        raise ValidationError("transaction has no outputs")
    total = 0
    for out in tx.vout:
        if out.value < 0:
            raise ValidationError("negative output value")
        if out.value > MAX_MONEY:
            raise ValidationError("output value exceeds max money")
        total += out.value
        if total > MAX_MONEY:
            raise ValidationError("total output value exceeds max money")
    # Rule 3, within-transaction half: inputs must be distinct.
    prevouts = [txin.prevout for txin in tx.vin]
    if len(set(prevouts)) != len(prevouts):
        raise ValidationError("duplicate inputs")
    if tx.is_coinbase:
        return
    for txin in tx.vin:
        if txin.prevout.is_null:
            raise ValidationError("null prevout in non-coinbase transaction")


# Sentinel: "use the process-wide default signature cache".  Callers pass
# an explicit ``None`` to bypass caching (differential tests do).
_DEFAULT_SIG_CACHE = object()


def make_sig_checker(
    tx: Transaction,
    input_index: int,
    script_code,
    sighash_cache: SighashCache | None = None,
    sig_cache=_DEFAULT_SIG_CACHE,
):
    """Build the script-engine signature callback for one input.

    The callback receives ``signature || hashtype_byte`` and a pubkey, as
    Bitcoin scripts push them, computes the corresponding sighash over the
    *spending* transaction, and verifies with ECDSA.

    ``sighash_cache`` (built per transaction) reuses serialization midstates
    across this transaction's inputs; ``sig_cache`` skips ECDSA entirely for
    `(digest, pubkey, sig)` triples already verified — by default the shared
    :func:`repro.bitcoin.sigcache.default_cache`, pass ``None`` to disable.
    """

    def checker(sig_with_type: bytes, pubkey_bytes: bytes) -> bool:
        if len(sig_with_type) < 2:
            return False
        hash_type = sig_with_type[-1]
        sig_bytes = sig_with_type[:-1]
        try:
            signature = Signature.decode(sig_bytes)
            pubkey = Point.decode(pubkey_bytes)
        except ValueError:
            return False
        try:
            if sighash_cache is not None:
                digest = sighash_cache.digest(input_index, script_code, hash_type)
            else:
                digest = signature_hash(tx, input_index, script_code, hash_type)
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc
        cache = (
            sigcache.default_cache()
            if sig_cache is _DEFAULT_SIG_CACHE
            else sig_cache
        )
        if cache is not None:
            cached = cache.get(digest, pubkey_bytes, sig_bytes)
            if cached is not None:
                return cached
        verdict = ecdsa_verify(pubkey, digest, signature)
        if cache is not None:
            cache.put(digest, pubkey_bytes, sig_bytes, verdict)
        return verdict

    return checker


def check_tx_inputs(
    tx: Transaction,
    utxos: UTXOSet,
    height: int,
    verify_scripts: bool = True,
) -> TxValidity:
    """Validate a non-coinbase transaction against a UTXO view.

    Enforces rule 3 (inputs exist and are unspent — being *in* the table is
    being unspent), rule 4 (scripts/signatures authorize each spend), rule 1
    (value out ≤ value in, difference is the fee), plus coinbase maturity.
    """
    if tx.is_coinbase:
        raise ValidationError("coinbase cannot be validated as a spend")
    # Snapshot the obs flag once: every clock read below is guarded by this
    # same snapshot, so the deltas stay consistent even if obs.ENABLED flips
    # mid-validation (a checker callback may enable it, for instance).
    enabled = obs.ENABLED
    start = obs.clock() if enabled else 0.0
    check_transaction(tx)
    structure_done = obs.clock() if enabled else 0.0
    if enabled:
        obs.observe(
            "validation.rule_seconds", structure_done - start, rule="structure"
        )

    sighash_cache = SighashCache(tx) if verify_scripts else None
    script_time = 0.0
    script_start = 0.0
    value_in = 0
    for index, txin in enumerate(tx.vin):
        entry = utxos.get(txin.prevout)
        if entry is None:
            raise ValidationError(f"missing or spent input {txin.prevout}")
        if entry.is_coinbase and height - entry.height < COINBASE_MATURITY:
            raise ValidationError("premature spend of coinbase output")
        value_in += entry.output.value
        if verify_scripts:
            script_code = entry.output.script_pubkey
            checker = make_sig_checker(
                tx, index, script_code, sighash_cache=sighash_cache
            )
            if enabled:
                script_start = obs.clock()
            authorized = execute_script(txin.script_sig, script_code, checker)
            if enabled:
                script_time += obs.clock() - script_start
            if not authorized:
                raise ValidationError(f"script validation failed on input {index}")

    value_out = tx.total_output_value()
    if value_out > value_in:
        raise ValidationError("outputs exceed inputs")
    if enabled:
        end = obs.clock()
        obs.inc("validation.tx_total")
        obs.observe("validation.rule_seconds", script_time, rule="scripts")
        obs.observe(
            "validation.rule_seconds",
            end - structure_done - script_time,
            rule="inputs",
        )
    return TxValidity(fee=value_in - value_out)


# ----------------------------------------------------------------------
# Parallel script verification (block connect)
# ----------------------------------------------------------------------

# One unit of script work: (spending tx, input index, scriptPubKey spent).
ScriptJob = tuple[Transaction, int, Script]


def _verify_job_group(
    tx: Transaction,
    items: list[tuple[int, Script]],
    sig_cache=_DEFAULT_SIG_CACHE,
) -> tuple[bool, str | None]:
    """Verify one transaction's script jobs sharing a single SighashCache."""
    cache = SighashCache(tx)
    for index, script_code in items:
        checker = make_sig_checker(
            tx, index, script_code, sighash_cache=cache, sig_cache=sig_cache
        )
        try:
            ok = execute_script(tx.vin[index].script_sig, script_code, checker)
        except ValidationError as exc:
            return False, str(exc)
        if not ok:
            return False, f"script validation failed on input {index}"
    return True, None


def _pool_worker(payload: tuple[bytes, list[tuple[int, bytes]]]):
    """Process-pool entry point: verify one transaction's inputs.

    Ships bytes, not objects, so the payload pickles cheaply; the worker
    reparses and verifies with its own per-transaction SighashCache.  (With
    the default fork start method, workers also inherit a copy of whatever
    the parent's shared sigcache held when the pool started.)
    """
    tx_bytes, jobs = payload
    tx = Transaction.parse(tx_bytes)
    items = [(index, Script.parse(script_bytes)) for index, script_bytes in jobs]
    return _verify_job_group(tx, items)


class ParallelScriptVerifier:
    """Fan block-connect script checks across a worker pool.

    ``workers=1`` (the default) verifies serially in-process — no pool, and
    full benefit from the shared signature cache.  With ``workers > 1`` a
    persistent ``ProcessPoolExecutor`` verifies per-transaction batches;
    results are consumed in submission order, so the *first* failure
    reported is deterministic (earliest transaction, then earliest input)
    regardless of worker scheduling.
    """

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None

    @staticmethod
    def _grouped(jobs: list[ScriptJob]) -> list[tuple[Transaction, list[tuple[int, Script]]]]:
        groups: list[tuple[Transaction, list[tuple[int, Script]]]] = []
        for tx, index, script_code in jobs:
            if groups and groups[-1][0] is tx:
                groups[-1][1].append((index, script_code))
            else:
                groups.append((tx, [(index, script_code)]))
        return groups

    def verify_all(self, jobs: list[ScriptJob]) -> None:
        """Verify every job; raise :class:`ValidationError` on first failure."""
        if not jobs:
            return
        groups = self._grouped(jobs)
        if self.workers == 1:
            for tx, items in groups:
                ok, message = _verify_job_group(tx, items)
                if not ok:
                    raise ValidationError(message)
            return
        payloads = [
            (
                tx.serialize(),
                [(index, code.serialize()) for index, code in items],
            )
            for tx, items in groups
        ]
        executor = self._ensure_executor()
        try:
            for ok, message in executor.map(_pool_worker, payloads):
                if not ok:
                    raise ValidationError(message)
        except concurrent.futures.process.BrokenProcessPool:
            # A worker died mid-block (OOM kill, crash, deliberate fault
            # injection).  The executor is unusable, but the block still
            # deserves a verdict: discard the pool and re-verify every
            # group serially in-process.  Script checks are pure, so the
            # re-run cannot disagree with work the dead pool completed.
            self._executor = None
            executor.shutdown(wait=False, cancel_futures=True)
            if obs.ENABLED:
                obs.inc("script.pool_broken_total")
                obs.emit("script.pool_broken", groups=len(groups))
            for tx, items in groups:
                ok, message = _verify_job_group(tx, items)
                if not ok:
                    raise ValidationError(message)

    def _ensure_executor(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool restarts on demand)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None


# ----------------------------------------------------------------------
# Batched ECDSA verification (block connect, single-process)
# ----------------------------------------------------------------------

# Script shapes whose single CHECKSIG verdict may be deferred into a batch.
# Multisig needs its verdicts *inline* (the interpreter walks key/sig lists
# based on each result), so it always verifies serially.
_BATCHABLE_TYPES = (ScriptType.P2PK, ScriptType.P2PKH)


def _make_collecting_checker(
    input_index: int,
    script_code,
    sighash_cache: SighashCache,
    cache,
    pending: list,
):
    """A sig checker that defers the ECDSA verify into a batch.

    Structural checks (DER/point decoding) and the sighash run eagerly —
    their failures are deterministic and cheap.  The signature cache is
    consulted first; only misses join ``pending`` as
    ``(pubkey, digest, signature, pubkey_bytes, sig_bytes)``, and the
    checker answers **True optimistically** — the batch equation is the
    authority, and any batch failure triggers the authoritative serial
    re-run in :func:`verify_scripts_batched`.
    """

    def checker(sig_with_type: bytes, pubkey_bytes: bytes) -> bool:
        if len(sig_with_type) < 2:
            return False
        hash_type = sig_with_type[-1]
        sig_bytes = sig_with_type[:-1]
        try:
            signature = Signature.decode(sig_bytes)
            pubkey = Point.decode(pubkey_bytes)
        except ValueError:
            return False
        try:
            digest = sighash_cache.digest(input_index, script_code, hash_type)
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc
        if cache is not None:
            cached = cache.get(digest, pubkey_bytes, sig_bytes)
            if cached is not None:
                return cached
        pending.append((pubkey, digest, signature, pubkey_bytes, sig_bytes))
        return True  # optimistic: the batch verdict below is the authority

    return checker


def verify_scripts_batched(
    jobs: list[ScriptJob], sig_cache=_DEFAULT_SIG_CACHE
) -> None:
    """Verify block-connect script jobs with batched ECDSA.

    Single-key scripts (P2PK/P2PKH — one CHECKSIG whose verdict is the
    script's verdict) run the interpreter with a *collecting* checker:
    sigcache hits answer immediately, misses defer into one
    ``(pubkey, digest, signature)`` batch checked by a single multi-scalar
    multiplication.  Everything else verifies inline exactly as the serial
    path does.

    Any failure anywhere — a script that fails structurally, an inline
    check, or a batch that does not sum to infinity — discards the
    optimistic results and re-runs **every** group through
    :func:`_verify_job_group`, so the error raised is bit-identical to the
    serial path's first error (earliest transaction, earliest input).  A
    fully green batch warms the signature cache, so the mempool→block
    re-validation of the same signatures stays cache-hits.
    """
    if not jobs:
        return
    groups = ParallelScriptVerifier._grouped(jobs)
    cache = (
        sigcache.default_cache()
        if sig_cache is _DEFAULT_SIG_CACHE
        else sig_cache
    )
    pending: list[tuple[Point, bytes, Signature, bytes, bytes]] = []
    optimistic_ok = True
    try:
        for tx, items in groups:
            shared = SighashCache(tx)
            for index, script_code in items:
                if classify(script_code).type in _BATCHABLE_TYPES:
                    checker = _make_collecting_checker(
                        index, script_code, shared, cache, pending
                    )
                else:
                    checker = make_sig_checker(
                        tx,
                        index,
                        script_code,
                        sighash_cache=shared,
                        sig_cache=sig_cache,
                    )
                if not execute_script(
                    tx.vin[index].script_sig, script_code, checker
                ):
                    optimistic_ok = False
                    break
            if not optimistic_ok:
                break
    except ValidationError:
        # A sighash error surfaced mid-collection; the serial re-run below
        # reproduces it (or an earlier failure) deterministically.
        optimistic_ok = False
    if optimistic_ok and pending:
        if obs.ENABLED:
            obs.inc("script.batch_collected_total", len(pending))
        verdicts = batch_verify(
            [(pubkey, digest, sig) for pubkey, digest, sig, _, _ in pending]
        )
        if all(verdicts):
            if cache is not None:
                # The batch proved every deferred triple: warm the shared
                # sigcache so revalidation never re-runs the math.
                for _, digest, _, pubkey_bytes, sig_bytes in pending:
                    cache.put(digest, pubkey_bytes, sig_bytes, True)
        else:
            optimistic_ok = False
    if optimistic_ok:
        return
    # Authoritative serial pass: same grouping and order as
    # ParallelScriptVerifier.verify_all(workers=1), so the first error is
    # the same error serial validation would raise.
    if obs.ENABLED:
        obs.inc("script.batch_fallback_total")
    for tx, items in groups:
        ok, message = _verify_job_group(tx, items, sig_cache=sig_cache)
        if not ok:
            raise ValidationError(message)
