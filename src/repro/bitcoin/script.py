"""The Bitcoin script language: a Forth-like stack machine (paper §3.3).

Scripts are sequences of opcodes and data pushes.  Spending a txout runs the
input's scriptSig followed by the output's scriptPubKey over a shared stack;
the spend is authorized iff execution succeeds and leaves a truthy top.

The interpreter supports the opcodes needed by every standard schema (P2PK,
P2PKH, m-of-n multisig, OP_RETURN) plus enough general machinery (flow
control, arithmetic, hashing, stack shuffling) that non-standard scripts can
be written and — as on the real network — relayed or refused by policy, not
by the consensus interpreter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.crypto.hashing import hash160, ripemd160, sha256, sha256d

MAX_SCRIPT_SIZE = 10_000
MAX_STACK_SIZE = 1_000
MAX_OPS_PER_SCRIPT = 201
MAX_PUSH_SIZE = 520
# Total stack pushes one execution may perform across both scripts.  No
# legal script approaches this (the stack cap is 1000 and the op budget
# bounds pops), but an explicit budget turns any interpreter bug that
# would loop or balloon into a typed, attributable failure.
MAX_SCRIPT_PUSHES = 2_000


class ScriptError(Exception):
    """Raised when script parsing or execution fails."""


class ScriptResourceError(ScriptError):
    """An execution budget (ops, pushes, stack size) was exhausted."""


class Op(enum.IntEnum):
    """Opcode numbers (the subset of Bitcoin's we implement)."""

    OP_0 = 0x00
    # 0x01–0x4B are direct pushes of that many bytes.
    OP_PUSHDATA1 = 0x4C
    OP_PUSHDATA2 = 0x4D
    OP_1NEGATE = 0x4F
    OP_1 = 0x51
    OP_2 = 0x52
    OP_3 = 0x53
    OP_4 = 0x54
    OP_5 = 0x55
    OP_6 = 0x56
    OP_7 = 0x57
    OP_8 = 0x58
    OP_9 = 0x59
    OP_10 = 0x5A
    OP_11 = 0x5B
    OP_12 = 0x5C
    OP_13 = 0x5D
    OP_14 = 0x5E
    OP_15 = 0x5F
    OP_16 = 0x60
    OP_NOP = 0x61
    OP_IF = 0x63
    OP_NOTIF = 0x64
    OP_ELSE = 0x67
    OP_ENDIF = 0x68
    OP_VERIFY = 0x69
    OP_RETURN = 0x6A
    OP_TOALTSTACK = 0x6B
    OP_FROMALTSTACK = 0x6C
    OP_2DROP = 0x6D
    OP_2DUP = 0x6E
    OP_IFDUP = 0x73
    OP_DEPTH = 0x74
    OP_DROP = 0x75
    OP_DUP = 0x76
    OP_NIP = 0x77
    OP_OVER = 0x78
    OP_PICK = 0x79
    OP_ROLL = 0x7A
    OP_ROT = 0x7B
    OP_SWAP = 0x7C
    OP_TUCK = 0x7D
    OP_SIZE = 0x82
    OP_EQUAL = 0x87
    OP_EQUALVERIFY = 0x88
    OP_1ADD = 0x8B
    OP_1SUB = 0x8C
    OP_NEGATE = 0x8F
    OP_ABS = 0x90
    OP_NOT = 0x91
    OP_0NOTEQUAL = 0x92
    OP_ADD = 0x93
    OP_SUB = 0x94
    OP_BOOLAND = 0x9A
    OP_BOOLOR = 0x9B
    OP_NUMEQUAL = 0x9C
    OP_NUMEQUALVERIFY = 0x9D
    OP_NUMNOTEQUAL = 0x9E
    OP_LESSTHAN = 0x9F
    OP_GREATERTHAN = 0xA0
    OP_LESSTHANOREQUAL = 0xA1
    OP_GREATERTHANOREQUAL = 0xA2
    OP_MIN = 0xA3
    OP_MAX = 0xA4
    OP_WITHIN = 0xA5
    OP_RIPEMD160 = 0xA6
    OP_SHA256 = 0xA8
    OP_HASH160 = 0xA9
    OP_HASH256 = 0xAA
    OP_CHECKSIG = 0xAC
    OP_CHECKSIGVERIFY = 0xAD
    OP_CHECKMULTISIG = 0xAE
    OP_CHECKMULTISIGVERIFY = 0xAF


# A script element is either an Op or a bytes push.
Element = Op | bytes

# Hot-path opcode decoding: a dict hit is ~5x cheaper than IntEnum's
# __call__ (EnumType.__call__ → __new__ → value lookup) and block parsing
# decodes one opcode per script element.
_OP_BY_VALUE: dict[int, Op] = {int(op): op for op in Op}
_PUSHDATA1 = 0x4C
_PUSHDATA2 = 0x4D


@dataclass(frozen=True)
class Script:
    """An immutable parsed script: a tuple of opcodes and byte pushes."""

    elements: tuple[Element, ...]

    def __init__(self, elements: Iterable[Element] = ()):
        object.__setattr__(self, "elements", tuple(elements))
        for el in self.elements:
            if isinstance(el, bytes) and len(el) > MAX_PUSH_SIZE:
                raise ScriptError("push exceeds 520-byte limit")

    def serialize(self) -> bytes:
        """Canonical byte serialization (minimal pushes)."""
        out = bytearray()
        for el in self.elements:
            if isinstance(el, Op):
                out.append(int(el))
            else:
                n = len(el)
                if n <= 0x4B:
                    out.append(n)
                elif n <= 0xFF:
                    out.append(int(Op.OP_PUSHDATA1))
                    out.append(n)
                else:
                    out.append(int(Op.OP_PUSHDATA2))
                    out += n.to_bytes(2, "little")
                out += el
        if len(out) > MAX_SCRIPT_SIZE:
            raise ScriptError("script exceeds 10k-byte limit")
        return bytes(out)

    @staticmethod
    def parse(data) -> "Script":
        """Parse a serialized script back into elements.

        Accepts bytes or a memoryview (the zero-copy transaction parser
        hands script bodies over without slicing them out of the block
        buffer); pushes are materialized as bytes either way, which is
        free for a bytes input.
        """
        size = len(data)
        if size > MAX_SCRIPT_SIZE:
            raise ScriptError("script exceeds 10k-byte limit")
        elements: list[Element] = []
        append = elements.append
        i = 0
        while i < size:
            byte = data[i]
            i += 1
            if 0x01 <= byte <= 0x4B:
                if i + byte > size:
                    raise ScriptError("truncated push")
                append(bytes(data[i : i + byte]))
                i += byte
            elif byte == _PUSHDATA1:
                if i >= size:
                    raise ScriptError("truncated PUSHDATA1")
                n = data[i]
                i += 1
                if i + n > size:
                    raise ScriptError("truncated push")
                append(bytes(data[i : i + n]))
                i += n
            elif byte == _PUSHDATA2:
                if i + 2 > size:
                    raise ScriptError("truncated PUSHDATA2")
                n = data[i] | (data[i + 1] << 8)
                i += 2
                if i + n > size:
                    raise ScriptError("truncated push")
                if n > MAX_PUSH_SIZE:
                    raise ScriptError("push exceeds 520-byte limit")
                append(bytes(data[i : i + n]))
                i += n
            else:
                op = _OP_BY_VALUE.get(byte)
                if op is None:
                    raise ScriptError(f"unknown opcode 0x{byte:02x}")
                append(op)
        # Every element is already validated (pushes are bounds- and
        # size-checked above), so skip the constructor's re-validation.
        script = object.__new__(Script)
        object.__setattr__(script, "elements", tuple(elements))
        return script

    def __add__(self, other: "Script") -> "Script":
        return Script(self.elements + other.elements)

    def __len__(self) -> int:
        return len(self.serialize())

    def __repr__(self) -> str:
        parts = [
            el.name if isinstance(el, Op) else el.hex() for el in self.elements
        ]
        return f"Script({' '.join(parts)})"


# --- Script numbers (CScriptNum): little-endian, sign-magnitude top bit. ---


def encode_num(value: int) -> bytes:
    if value == 0:
        return b""
    negative = value < 0
    magnitude = abs(value)
    out = bytearray()
    while magnitude:
        out.append(magnitude & 0xFF)
        magnitude >>= 8
    if out[-1] & 0x80:
        out.append(0x80 if negative else 0x00)
    elif negative:
        out[-1] |= 0x80
    return bytes(out)


def decode_num(data: bytes, max_size: int = 4) -> int:
    if len(data) > max_size:
        raise ScriptError("script number overflow")
    if not data:
        return 0
    value = int.from_bytes(data, "little")
    if data[-1] & 0x80:
        value &= ~(0x80 << (8 * (len(data) - 1)))
        return -value
    return value


def cast_to_bool(data: bytes) -> bool:
    """Bitcoin's truthiness: nonzero, ignoring a possible negative zero."""
    for i, byte in enumerate(data):
        if byte != 0:
            return not (i == len(data) - 1 and byte == 0x80)
    return False


# Type of the callback the interpreter uses to verify a signature: it gets
# (signature_bytes_with_hashtype, pubkey_bytes) and returns validity.  The
# transaction layer supplies a closure over the sighash computation so the
# script engine stays ignorant of transactions.
SigChecker = Callable[[bytes, bytes], bool]


def _no_signatures(_sig: bytes, _pubkey: bytes) -> bool:
    return False


@dataclass
class ExecutionBudget:
    """Resource accounting for one script execution.

    Tracks totals (``ops``, ``pushes``) across both scripts for metrics,
    while enforcing the per-script op limit Bitcoin imposes and an overall
    push budget; exhaustion raises :class:`ScriptResourceError` rather
    than letting a runaway script spin.
    """

    max_ops: int = MAX_OPS_PER_SCRIPT
    max_pushes: int = MAX_SCRIPT_PUSHES
    ops: int = 0
    pushes: int = 0
    script_ops: int = 0  # ops within the currently running script

    def begin_script(self) -> None:
        self.script_ops = 0

    def count_op(self) -> None:
        self.ops += 1
        self.script_ops += 1
        if self.script_ops > self.max_ops:
            raise ScriptResourceError("op count limit exceeded")

    def count_push(self) -> None:
        self.pushes += 1
        if self.pushes > self.max_pushes:
            raise ScriptResourceError("push budget exceeded")


@dataclass
class _Machine:
    stack: list[bytes] = field(default_factory=list)
    alt: list[bytes] = field(default_factory=list)
    budget: ExecutionBudget = field(default_factory=ExecutionBudget)
    # High-water mark of combined stack depth; maintained only when the
    # interpreter is observed (set by execute_script).
    track_depth: bool = False
    depth_hwm: int = 0

    def push(self, item: bytes) -> None:
        self.budget.count_push()
        self.stack.append(item)
        depth = len(self.stack) + len(self.alt)
        if depth > MAX_STACK_SIZE:
            raise ScriptResourceError("stack size limit exceeded")
        if self.track_depth and depth > self.depth_hwm:
            self.depth_hwm = depth

    def pop(self) -> bytes:
        if not self.stack:
            raise ScriptError("pop from empty stack")
        return self.stack.pop()

    def pop_num(self) -> int:
        return decode_num(self.pop())

    def push_num(self, value: int) -> None:
        self.push(encode_num(value))

    def push_bool(self, value: bool) -> None:
        self.push(b"\x01" if value else b"")


_SMALL_INT = {
    Op.OP_1: 1, Op.OP_2: 2, Op.OP_3: 3, Op.OP_4: 4, Op.OP_5: 5, Op.OP_6: 6,
    Op.OP_7: 7, Op.OP_8: 8, Op.OP_9: 9, Op.OP_10: 10, Op.OP_11: 11,
    Op.OP_12: 12, Op.OP_13: 13, Op.OP_14: 14, Op.OP_15: 15, Op.OP_16: 16,
}

_DISABLED_IN_SCRIPTSIG = frozenset({
    Op.OP_CHECKSIG, Op.OP_CHECKSIGVERIFY,
    Op.OP_CHECKMULTISIG, Op.OP_CHECKMULTISIGVERIFY,
})


def _run(
    script: Script,
    machine: _Machine,
    checker: SigChecker,
    op_counts: dict[Op, int] | None = None,
) -> None:
    budget = machine.budget
    budget.begin_script()
    # exec_flags[i] says whether the i-th nested IF branch is live.
    exec_flags: list[bool] = []

    for element in script.elements:
        live = all(exec_flags)

        if isinstance(element, bytes):
            if live:
                machine.push(element)
            continue

        op = element
        if op > Op.OP_16:
            budget.count_op()
            if op_counts is not None:
                op_counts[op] = op_counts.get(op, 0) + 1

        # Flow control runs even in dead branches.
        if op == Op.OP_IF or op == Op.OP_NOTIF:
            taken = False
            if live:
                cond = cast_to_bool(machine.pop())
                taken = cond if op == Op.OP_IF else not cond
            exec_flags.append(taken)
            continue
        if op == Op.OP_ELSE:
            if not exec_flags:
                raise ScriptError("OP_ELSE without OP_IF")
            exec_flags[-1] = not exec_flags[-1]
            continue
        if op == Op.OP_ENDIF:
            if not exec_flags:
                raise ScriptError("OP_ENDIF without OP_IF")
            exec_flags.pop()
            continue
        if not live:
            continue

        if op == Op.OP_0:
            machine.push(b"")
        elif op in _SMALL_INT:
            machine.push_num(_SMALL_INT[op])
        elif op == Op.OP_1NEGATE:
            machine.push_num(-1)
        elif op == Op.OP_NOP:
            pass
        elif op == Op.OP_VERIFY:
            if not cast_to_bool(machine.pop()):
                raise ScriptError("OP_VERIFY failed")
        elif op == Op.OP_RETURN:
            raise ScriptError("OP_RETURN executed")
        elif op == Op.OP_TOALTSTACK:
            machine.alt.append(machine.pop())
        elif op == Op.OP_FROMALTSTACK:
            if not machine.alt:
                raise ScriptError("alt stack empty")
            machine.push(machine.alt.pop())
        elif op == Op.OP_2DROP:
            machine.pop()
            machine.pop()
        elif op == Op.OP_2DUP:
            a, b = machine.pop(), machine.pop()
            for item in (b, a, b, a):
                machine.push(item)
        elif op == Op.OP_IFDUP:
            top = machine.pop()
            machine.push(top)
            if cast_to_bool(top):
                machine.push(top)
        elif op == Op.OP_DEPTH:
            machine.push_num(len(machine.stack))
        elif op == Op.OP_DROP:
            machine.pop()
        elif op == Op.OP_DUP:
            top = machine.pop()
            machine.push(top)
            machine.push(top)
        elif op == Op.OP_NIP:
            top = machine.pop()
            machine.pop()
            machine.push(top)
        elif op == Op.OP_OVER:
            a, b = machine.pop(), machine.pop()
            for item in (b, a, b):
                machine.push(item)
        elif op in (Op.OP_PICK, Op.OP_ROLL):
            n = machine.pop_num()
            if n < 0 or n >= len(machine.stack):
                raise ScriptError("PICK/ROLL index out of range")
            index = len(machine.stack) - 1 - n
            item = machine.stack[index]
            if op == Op.OP_ROLL:
                del machine.stack[index]
            machine.push(item)
        elif op == Op.OP_ROT:
            c, b, a = machine.pop(), machine.pop(), machine.pop()
            for item in (b, c, a):
                machine.push(item)
        elif op == Op.OP_SWAP:
            a, b = machine.pop(), machine.pop()
            machine.push(a)
            machine.push(b)
        elif op == Op.OP_TUCK:
            a, b = machine.pop(), machine.pop()
            for item in (a, b, a):
                machine.push(item)
        elif op == Op.OP_SIZE:
            top = machine.pop()
            machine.push(top)
            machine.push_num(len(top))
        elif op in (Op.OP_EQUAL, Op.OP_EQUALVERIFY):
            equal = machine.pop() == machine.pop()
            if op == Op.OP_EQUALVERIFY:
                if not equal:
                    raise ScriptError("OP_EQUALVERIFY failed")
            else:
                machine.push_bool(equal)
        elif op == Op.OP_1ADD:
            machine.push_num(machine.pop_num() + 1)
        elif op == Op.OP_1SUB:
            machine.push_num(machine.pop_num() - 1)
        elif op == Op.OP_NEGATE:
            machine.push_num(-machine.pop_num())
        elif op == Op.OP_ABS:
            machine.push_num(abs(machine.pop_num()))
        elif op == Op.OP_NOT:
            machine.push_bool(machine.pop_num() == 0)
        elif op == Op.OP_0NOTEQUAL:
            machine.push_bool(machine.pop_num() != 0)
        elif op == Op.OP_ADD:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_num(a + b)
        elif op == Op.OP_SUB:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_num(a - b)
        elif op == Op.OP_BOOLAND:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a != 0 and b != 0)
        elif op == Op.OP_BOOLOR:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a != 0 or b != 0)
        elif op in (Op.OP_NUMEQUAL, Op.OP_NUMEQUALVERIFY):
            b, a = machine.pop_num(), machine.pop_num()
            if op == Op.OP_NUMEQUALVERIFY:
                if a != b:
                    raise ScriptError("OP_NUMEQUALVERIFY failed")
            else:
                machine.push_bool(a == b)
        elif op == Op.OP_NUMNOTEQUAL:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a != b)
        elif op == Op.OP_LESSTHAN:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a < b)
        elif op == Op.OP_GREATERTHAN:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a > b)
        elif op == Op.OP_LESSTHANOREQUAL:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a <= b)
        elif op == Op.OP_GREATERTHANOREQUAL:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_bool(a >= b)
        elif op == Op.OP_MIN:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_num(min(a, b))
        elif op == Op.OP_MAX:
            b, a = machine.pop_num(), machine.pop_num()
            machine.push_num(max(a, b))
        elif op == Op.OP_WITHIN:
            hi, lo, x = machine.pop_num(), machine.pop_num(), machine.pop_num()
            machine.push_bool(lo <= x < hi)
        elif op == Op.OP_RIPEMD160:
            machine.push(ripemd160(machine.pop()))
        elif op == Op.OP_SHA256:
            machine.push(sha256(machine.pop()))
        elif op == Op.OP_HASH160:
            machine.push(hash160(machine.pop()))
        elif op == Op.OP_HASH256:
            machine.push(sha256d(machine.pop()))
        elif op in (Op.OP_CHECKSIG, Op.OP_CHECKSIGVERIFY):
            pubkey = machine.pop()
            sig = machine.pop()
            ok = bool(sig) and checker(sig, pubkey)
            if op == Op.OP_CHECKSIGVERIFY:
                if not ok:
                    raise ScriptError("OP_CHECKSIGVERIFY failed")
            else:
                machine.push_bool(ok)
        elif op in (Op.OP_CHECKMULTISIG, Op.OP_CHECKMULTISIGVERIFY):
            n = machine.pop_num()
            if not 0 <= n <= 20:
                raise ScriptError("multisig n out of range")
            pubkeys = [machine.pop() for _ in range(n)]
            m = machine.pop_num()
            if not 0 <= m <= n:
                raise ScriptError("multisig m out of range")
            sigs = [machine.pop() for _ in range(m)]
            # Historical off-by-one: an extra element is consumed.
            machine.pop()
            # Signatures must match pubkeys in order.
            ok = True
            key_iter = iter(pubkeys)
            for sig in sigs:
                matched = False
                for pubkey in key_iter:
                    if sig and checker(sig, pubkey):
                        matched = True
                        break
                if not matched:
                    ok = False
                    break
            if op == Op.OP_CHECKMULTISIGVERIFY:
                if not ok:
                    raise ScriptError("OP_CHECKMULTISIGVERIFY failed")
            else:
                machine.push_bool(ok)
        else:  # pragma: no cover - every Op is handled above
            raise ScriptError(f"unimplemented opcode {op!r}")

    if exec_flags:
        raise ScriptError("unterminated OP_IF")


def execute_script(
    script_sig: Script,
    script_pubkey: Script,
    checker: SigChecker = _no_signatures,
) -> bool:
    """Run scriptSig then scriptPubKey on a shared stack; True iff authorized.

    Per post-2010 Bitcoin the two scripts run as separate programs sharing
    only the data stack, and the scriptSig must be push-only (so it cannot
    tamper with the scriptPubKey's control flow).
    """
    for element in script_sig.elements:
        if isinstance(element, Op) and element not in (
            Op.OP_0, Op.OP_1NEGATE, *(_SMALL_INT.keys()),
        ):
            raise ScriptError("scriptSig must be push-only")
    machine = _Machine()
    enabled = obs.ENABLED
    prof = obs.PROFILER if enabled else None
    op_counts: dict[Op, int] | None = None
    if enabled:
        machine.track_depth = True
        op_counts = {}
    ok = True
    exhausted: ScriptResourceError | None = None
    if prof is not None:
        prof.enter("script")
    try:
        try:
            _run(script_sig, machine, checker, op_counts)
            _run(script_pubkey, machine, checker, op_counts)
        except ScriptResourceError as exc:
            ok = False
            exhausted = exc
        except ScriptError:
            ok = False
    finally:
        if prof is not None:
            prof.exit()
    result = ok and bool(machine.stack) and cast_to_bool(machine.stack[-1])
    if enabled:
        obs.inc("script.executions_total")
        obs.inc("script.ops_total", machine.budget.ops)
        obs.inc("script.pushes_total", machine.budget.pushes)
        obs.gauge_max("script.stack_depth_hwm", machine.depth_hwm)
        if not result:
            obs.inc("script.failures_total")
        if exhausted is not None:
            obs.inc("script.budget_exhausted_total")
            obs.emit("script.budget_exhausted", reason=str(exhausted))
        for op, count in op_counts.items():
            obs.inc(f"script.op.{op.name}", count)
    return result
