"""A Bitcoin wallet: keys, spendable-output tracking, signing (paper §3.1).

Typecoin clients need ordinary bitcoins to carry their transactions ("In a
typical Typecoin transaction, all the bitcoin amounts will be very small"),
so the wallet supports small-value coin selection, change outputs, and
signing of both P2PKH and m-of-n multisig inputs — the latter being how
Typecoin metadata outputs (1-of-2) and escrow outputs (2-of-3) are unlocked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.script import Op, Script
from repro.bitcoin.sighash import SigHashType, signature_hash
from repro.bitcoin.standard import ScriptType, classify, p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.utxo import COINBASE_MATURITY
from repro.crypto.keys import PrivateKey


class WalletError(Exception):
    """Raised for signing and funding failures."""


@dataclass(frozen=True)
class Spendable:
    """An output this wallet can spend."""

    outpoint: OutPoint
    output: TxOut
    height: int
    is_coinbase: bool


class Wallet:
    """Holds private keys and builds signed transactions against a chain."""

    def __init__(self, keys: list[PrivateKey] | None = None):
        self._keys: list[PrivateKey] = list(keys or [])

    @staticmethod
    def from_seed(seed: bytes, count: int = 1) -> "Wallet":
        keys = [
            PrivateKey.from_seed(seed + i.to_bytes(4, "big")) for i in range(count)
        ]
        return Wallet(keys)

    @property
    def keys(self) -> list[PrivateKey]:
        return list(self._keys)

    @property
    def default_key(self) -> PrivateKey:
        if not self._keys:
            raise WalletError("wallet has no keys")
        return self._keys[0]

    @property
    def key_hash(self) -> bytes:
        return self.default_key.public.key_hash

    @property
    def address(self) -> str:
        return self.default_key.public.address

    def add_key(self, key: PrivateKey) -> None:
        self._keys.append(key)

    def new_key(self, seed: bytes) -> PrivateKey:
        key = PrivateKey.from_seed(seed)
        self._keys.append(key)
        return key

    def _key_for_hash(self, key_hash: bytes) -> PrivateKey | None:
        for key in self._keys:
            if key.public.key_hash == key_hash:
                return key
        return None

    def _key_for_pubkey(self, pubkey: bytes) -> PrivateKey | None:
        for key in self._keys:
            if key.public.encoded == pubkey:
                return key
        return None

    def _controls(self, script_pubkey: Script) -> bool:
        classified = classify(script_pubkey)
        if classified.type is ScriptType.P2PKH:
            return self._key_for_hash(classified.data[0]) is not None
        if classified.type is ScriptType.P2PK:
            return self._key_for_pubkey(classified.data[0]) is not None
        if classified.type is ScriptType.MULTISIG:
            ours = sum(
                1 for pk in classified.data if self._key_for_pubkey(pk) is not None
            )
            return ours >= classified.required_sigs
        return False

    def spendables(self, chain: Blockchain) -> list[Spendable]:
        """Outputs in the chain's UTXO set this wallet can spend now."""
        result = []
        for outpoint, entry in chain.utxos.items():
            if not self._controls(entry.output.script_pubkey):
                continue
            # Same expression as consensus (check_tx_inputs): a coinbase
            # is offered only once a spend of it at the current height
            # would validate.  The old `+ 1` variant offered it one block
            # early — the wallet built spends consensus then rejected.
            if (
                entry.is_coinbase
                and chain.height - entry.height < COINBASE_MATURITY
            ):
                continue
            result.append(
                Spendable(outpoint, entry.output, entry.height, entry.is_coinbase)
            )
        # Deterministic order: oldest first, then by outpoint.
        result.sort(key=lambda s: (s.height, s.outpoint))
        return result

    def balance(self, chain: Blockchain) -> int:
        return sum(s.output.value for s in self.spendables(chain))

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------

    def sign_input(
        self,
        tx: Transaction,
        input_index: int,
        script_pubkey: Script,
        hash_type: int = SigHashType.ALL,
    ) -> Transaction:
        """Sign one input, returning the transaction with scriptSig filled."""
        classified = classify(script_pubkey)
        digest = signature_hash(tx, input_index, script_pubkey, hash_type)
        if classified.type is ScriptType.P2PKH:
            key = self._key_for_hash(classified.data[0])
            if key is None:
                raise WalletError("no key for P2PKH output")
            sig = key.sign_digest(digest).encode() + bytes([hash_type])
            script_sig = Script([sig, key.public.encoded])
        elif classified.type is ScriptType.P2PK:
            key = self._key_for_pubkey(classified.data[0])
            if key is None:
                raise WalletError("no key for P2PK output")
            sig = key.sign_digest(digest).encode() + bytes([hash_type])
            script_sig = Script([sig])
        elif classified.type is ScriptType.MULTISIG:
            sigs: list[bytes] = []
            for pubkey in classified.data:
                key = self._key_for_pubkey(pubkey)
                if key is not None:
                    sigs.append(key.sign_digest(digest).encode() + bytes([hash_type]))
                if len(sigs) == classified.required_sigs:
                    break
            if len(sigs) < classified.required_sigs:
                raise WalletError("not enough keys for multisig output")
            # Leading OP_0 feeds CHECKMULTISIG's historical extra pop.
            script_sig = Script([Op.OP_0, *sigs])
        else:
            raise WalletError(f"cannot sign {classified.type} output")
        return tx.with_input_script(input_index, script_sig)

    def sign_all(
        self,
        tx: Transaction,
        prevout_scripts: list[Script],
        hash_type: int = SigHashType.ALL,
        skip: set[OutPoint] | None = None,
    ) -> Transaction:
        """Sign every input; ``prevout_scripts[i]`` locks input i.

        Inputs whose prevout is in ``skip`` are left unsigned (their
        signatures are collected elsewhere, e.g. from escrow agents).
        """
        if len(prevout_scripts) != len(tx.vin):
            raise WalletError("one prevout script required per input")
        for index, script in enumerate(prevout_scripts):
            if skip and tx.vin[index].prevout in skip:
                continue
            tx = self.sign_input(tx, index, script, hash_type)
        return tx

    # ------------------------------------------------------------------
    # Funding
    # ------------------------------------------------------------------

    def create_transaction(
        self,
        chain: Blockchain,
        outputs: list[TxOut],
        fee: int,
        change_key_hash: bytes | None = None,
        extra_inputs: list[Spendable] | None = None,
        exclude: set[OutPoint] | None = None,
        skip_sign: set[OutPoint] | None = None,
    ) -> Transaction:
        """Fund, build, and sign a transaction paying ``outputs`` plus ``fee``.

        Selects this wallet's spendables oldest-first; any surplus above
        outputs+fee returns to ``change_key_hash`` (default: our key).
        ``exclude`` skips outpoints already committed elsewhere (e.g. spent
        by a transaction still in the mempool).
        """
        target = sum(out.value for out in outputs) + fee
        selected: list[Spendable] = list(extra_inputs or [])
        total = sum(s.output.value for s in selected)
        if total < target:
            already = {s.outpoint for s in selected} | (exclude or set())
            for spendable in self.spendables(chain):
                if spendable.outpoint in already:
                    continue
                selected.append(spendable)
                total += spendable.output.value
                if total >= target:
                    break
        if total < target:
            raise WalletError(f"insufficient funds: have {total}, need {target}")

        vout = list(outputs)
        change = total - target
        if change > 0:
            change_hash = change_key_hash or self.key_hash
            vout.append(TxOut(change, p2pkh_script(change_hash)))

        tx = Transaction(
            vin=[TxIn(s.outpoint) for s in selected],
            vout=vout,
        )
        return self.sign_all(
            tx, [s.output.script_pubkey for s in selected], skip=skip_sign
        )
