"""A dirty-entry UTXO cache layered over a base set (Bitcoin Core dbcache).

Bitcoin Core's ``CCoinsViewCache`` observation: most outputs die young.
An output created and spent within one cache lifetime never needs to
reach the backing view at all — the two events *annihilate*.  This module
reproduces that hierarchy for the reproduction's pipeline: a
:class:`UTXOCache` holds an overlay of dirty entries over a base
:class:`~repro.bitcoin.utxo.UTXOSet` (the set the durable store
snapshots), absorbs every add/remove in dict operations, and writes the
surviving net effect back in one :meth:`flush`.

Overlay states per outpoint:

* **absent** — the base's view stands;
* **live + FRESH** — created in-cache, base has no version: flush adds it,
  an in-cache spend annihilates it without touching the base;
* **live, not FRESH** — a base-resident outpoint re-created after an
  in-cache spend (reorg replays do this): flush replaces the base entry;
* **tombstone** (``None``) — a base-resident entry spent in-cache: flush
  removes it from the base.

Strict undo semantics are preserved: the cache inherits every apply/undo
algorithm from :class:`UTXOSet` and only overrides the storage
primitives, so spending a missing output or undoing a foreign block
raises exactly as the plain set does.  Flushing is safe at any block
boundary (it never changes the merged view); the chain flushes before
every durable snapshot so the snapshot sees the full state, and a size
trigger ages the overlay out when it outgrows ``max_entries`` — the
OP_RETURN sweep in ``apply_transaction`` (the existing GC) keeps
unspendable outputs from ever entering either layer.

See ``docs/performance.md`` ("The block pipeline") for the flush rules.
"""

from __future__ import annotations

from repro import obs
from repro.bitcoin.standard import ScriptType, classify
from repro.bitcoin.transaction import OutPoint, Transaction
from repro.bitcoin.utxo import UTXOEntry, UTXOSet

# Overlay miss sentinel: distinguishes "no overlay opinion" from a
# tombstone (None means spent-in-cache).
_MISS = object()


class UTXOCache(UTXOSet):
    """A write-back overlay presenting the full :class:`UTXOSet` interface.

    Drop-in for ``Blockchain.utxos``: lookups hit the overlay dict first,
    mutations never touch the base until :meth:`flush`.
    """

    def __init__(self, base: UTXOSet, max_entries: int = 100_000):
        super().__init__()  # the inherited dict stays empty; state is below
        self.base = base
        self.max_entries = max_entries
        self._overlay: dict[OutPoint, UTXOEntry | None] = {}
        self._fresh: set[OutPoint] = set()
        # Net deltas versus the base, so len() and serialized_size() stay
        # O(1) without walking either layer.
        self._len_delta = 0
        self._size_delta = 0

    # ------------------------------------------------------------------
    # Reads: overlay first, base second
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.base) + self._len_delta

    def __contains__(self, outpoint: OutPoint) -> bool:
        entry = self._overlay.get(outpoint, _MISS)
        if entry is not _MISS:
            return entry is not None
        return outpoint in self.base

    def get(self, outpoint: OutPoint) -> UTXOEntry | None:
        entry = self._overlay.get(outpoint, _MISS)
        if entry is not _MISS:
            if obs.ENABLED:
                obs.inc("utxocache.hits_total")
            return entry  # a tombstone reads as spent (None)
        if obs.ENABLED:
            obs.inc("utxocache.misses_total")
        return self.base.get(outpoint)

    def items(self):
        """The merged view: base entries not shadowed, then overlay adds."""
        overlay = self._overlay
        for outpoint, entry in self.base.items():
            if outpoint not in overlay:
                yield outpoint, entry
        for outpoint, entry in overlay.items():
            if entry is not None:
                yield outpoint, entry

    def overlay_len(self) -> int:
        """How many outpoints the overlay currently shadows."""
        return len(self._overlay)

    # ------------------------------------------------------------------
    # Writes: absorbed by the overlay
    # ------------------------------------------------------------------

    def add(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        current = self._overlay.get(outpoint, _MISS)
        if current is not _MISS:
            if current is not None:
                raise ValueError(f"duplicate UTXO {outpoint}")
            # Re-creating over a tombstone: the base still holds the old
            # (spent) version, so the entry is dirty but NOT fresh —
            # flush must replace, not blindly add.
            self._overlay[outpoint] = entry
        else:
            if outpoint in self.base:
                raise ValueError(f"duplicate UTXO {outpoint}")
            self._overlay[outpoint] = entry
            self._fresh.add(outpoint)
        self._len_delta += 1
        self._size_delta += entry.serialized_size()

    def remove(self, outpoint: OutPoint) -> UTXOEntry:
        current = self._overlay.get(outpoint, _MISS)
        if current is not _MISS:
            if current is None:
                raise KeyError(
                    f"spending unknown or spent txout {outpoint}"
                )
            if outpoint in self._fresh:
                # Created and spent inside the cache: the pair annihilates
                # without the base (or the store behind it) ever seeing it.
                del self._overlay[outpoint]
                self._fresh.discard(outpoint)
                if obs.ENABLED:
                    obs.inc("utxocache.annihilated_total")
            else:
                self._overlay[outpoint] = None
        else:
            entry = self.base.get(outpoint)
            if entry is None:
                raise KeyError(
                    f"spending unknown or spent txout {outpoint}"
                )
            current = entry
            self._overlay[outpoint] = None
        self._len_delta -= 1
        self._size_delta -= current.serialized_size()
        return current

    # Undo primitives (inherited _undo_block_inner drives these).

    def _delete_created(self, outpoint: OutPoint) -> bool:
        current = self._overlay.get(outpoint, _MISS)
        if current is _MISS:
            entry = self.base.get(outpoint)
            if entry is None:
                return False
            current = entry
            self._overlay[outpoint] = None
        elif current is None:
            return False
        elif outpoint in self._fresh:
            del self._overlay[outpoint]
            self._fresh.discard(outpoint)
            if obs.ENABLED:
                obs.inc("utxocache.annihilated_total")
        else:
            self._overlay[outpoint] = None
        self._len_delta -= 1
        self._size_delta -= current.serialized_size()
        return True

    def _restore_spent(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        current = self._overlay.get(outpoint, _MISS)
        if current is None:
            # Undoing an in-cache spend of a base-resident entry: clearing
            # the tombstone makes the base version visible again.
            del self._overlay[outpoint]
        else:
            # The spend annihilated a fresh entry, or happened before this
            # cache's lifetime (pre-attach or flushed): re-create it.
            self._overlay[outpoint] = entry
            if outpoint not in self.base:
                self._fresh.add(outpoint)
        self._len_delta += 1
        self._size_delta += entry.serialized_size()

    def apply_block_txs(self, txs: list[Transaction], height: int):
        undo = super().apply_block_txs(txs, height)
        if len(self._overlay) > self.max_entries:
            # Age the overlay out once it outgrows its budget (the
            # dbcache-style size trigger); safe mid-chain because flushing
            # never changes the merged view.
            self.flush(reason="size")
        elif obs.ENABLED:
            obs.gauge_set("utxocache.overlay_size", len(self._overlay))
        return undo

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------

    def flush(self, reason: str = "manual") -> int:
        """Write every dirty entry back to the base set; returns how many.

        Tombstones remove their base entries, FRESH entries are added,
        dirty non-fresh entries replace what the base holds.  The merged
        view is unchanged, so a flush is legal at any block boundary; the
        chain calls it before durable snapshots and on recovery.
        """
        written = 0
        if obs.ENABLED and self._overlay:
            with obs.trace_span(
                "utxocache.flush", entries=len(self._overlay), reason=reason
            ):
                written = self._flush_inner()
        else:
            written = self._flush_inner()
        if obs.ENABLED:
            obs.inc("utxocache.flushes_total")
            obs.inc("utxocache.flushed_entries_total", written)
            obs.gauge_set("utxocache.overlay_size", 0)
        return written

    def _flush_inner(self) -> int:
        base = self.base
        written = 0
        for outpoint, entry in self._overlay.items():
            if entry is None:
                base.remove(outpoint)
            elif outpoint in self._fresh:
                base.add(outpoint, entry)
            else:
                base.remove(outpoint)
                base.add(outpoint, entry)
            written += 1
        self._overlay.clear()
        self._fresh.clear()
        self._len_delta = 0
        self._size_delta = 0
        return written

    # ------------------------------------------------------------------
    # Aggregates over the merged view
    # ------------------------------------------------------------------

    def total_value(self) -> int:
        return sum(entry.output.value for _, entry in self.items())

    def serialized_size(self) -> int:
        return self.base.serialized_size() + self._size_delta

    def count_by_type(self) -> dict[ScriptType, int]:
        counts: dict[ScriptType, int] = {}
        for _, entry in self.items():
            script_type = classify(entry.output.script_pubkey).type
            counts[script_type] = counts.get(script_type, 0) + 1
        return counts

    def snapshot(self) -> dict[OutPoint, UTXOEntry]:
        merged = self.base.snapshot()
        for outpoint, entry in self._overlay.items():
            if entry is None:
                merged.pop(outpoint, None)
            else:
                merged[outpoint] = entry
        return merged
