"""A self-contained Bitcoin implementation.

The paper's reference implementation of Typecoin "includes a new Standard ML
implementation of Bitcoin" (§3); this package is the Python analogue.  It
provides the script interpreter and standard schemas (§3.3), transactions and
the four validity rules of §2, proof-of-work blocks with difficulty
adjustment (§1), a block-tree chain with longest-work selection and reorgs,
an unspent-txout table, a standardness-enforcing mempool, a miner, a
discrete-event network simulator, a wallet, and a regtest harness.
"""

from repro.bitcoin.script import Script, ScriptError, Op, execute_script
from repro.bitcoin.standard import (
    ScriptType,
    classify,
    is_standard,
    p2pkh_script,
    multisig_script,
    op_return_script,
)
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.sighash import SigHashType, signature_hash
from repro.bitcoin.block import Block, BlockHeader
from repro.bitcoin.pow import bits_to_target, target_to_bits, block_work
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.utxo import UTXOSet, UTXOEntry
from repro.bitcoin.mempool import Mempool, MempoolError
from repro.bitcoin.miner import Miner, block_subsidy
from repro.bitcoin.wallet import Wallet
from repro.bitcoin.regtest import RegtestNetwork

__all__ = [
    "Script",
    "ScriptError",
    "Op",
    "execute_script",
    "ScriptType",
    "classify",
    "is_standard",
    "p2pkh_script",
    "multisig_script",
    "op_return_script",
    "OutPoint",
    "Transaction",
    "TxIn",
    "TxOut",
    "SigHashType",
    "signature_hash",
    "Block",
    "BlockHeader",
    "bits_to_target",
    "target_to_bits",
    "block_work",
    "Blockchain",
    "UTXOSet",
    "UTXOEntry",
    "Mempool",
    "MempoolError",
    "Miner",
    "block_subsidy",
    "Wallet",
    "RegtestNetwork",
]
