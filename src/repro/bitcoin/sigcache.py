"""Bounded signature-verification cache shared across validation contexts.

A transaction's scripts are verified twice on the happy path: once at
mempool acceptance and again when a block containing it is connected.  The
ECDSA check is by far the dominant cost, and its verdict is a pure function
of ``(digest, pubkey, signature)``.  Caching by that full triple is sound
even under signature malleability (Andrychowicz et al., PAPERS.md): a
malleated signature is *different bytes* and simply misses the cache — it
never inherits the original's verdict.

Negative verdicts are cached too, for the same reason: the triple pins the
exact check, so a recorded ``False`` can only be returned for a byte-equal
re-ask.

The cache is a bounded LRU (``collections.OrderedDict``); one process-wide
default instance is shared by the mempool and block-connect paths so work
done at acceptance is skipped at connect.  Differential tests swap it out
or disable it entirely via :func:`set_default_cache`.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs

DEFAULT_MAX_ENTRIES = 65_536

# digest, pubkey bytes, signature bytes (without the hashtype byte).
CacheKey = tuple[bytes, bytes, bytes]


class SignatureCache:
    """Bounded LRU of ECDSA verification verdicts keyed by the full triple."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("signature cache needs at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict[CacheKey, bool] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: bytes, pubkey: bytes, sig: bytes) -> bool | None:
        """The cached verdict for the triple, or ``None`` on a miss."""
        key = (digest, pubkey, sig)
        verdict = self._entries.get(key)
        if verdict is None:
            if obs.ENABLED:
                obs.inc("sigcache.misses_total")
                prof = obs.PROFILER
                if prof is not None:
                    prof.enter("sigcache")
                    prof.exit()
            return None
        self._entries.move_to_end(key)
        if obs.ENABLED:
            obs.inc("sigcache.hits_total")
            prof = obs.PROFILER
            if prof is not None:
                prof.enter("sigcache")
                prof.exit()
        return verdict

    def put(self, digest: bytes, pubkey: bytes, sig: bytes, verdict: bool) -> None:
        """Record a verdict, evicting the least-recently-used on overflow."""
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("sigcache")
        key = (digest, pubkey, sig)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = verdict
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            if obs.ENABLED:
                obs.inc("sigcache.evictions_total")
        if obs.ENABLED:
            obs.gauge_set("sigcache.size", len(self._entries))
        if prof is not None:
            prof.exit()

    def clear(self) -> None:
        self._entries.clear()
        if obs.ENABLED:
            obs.gauge_set("sigcache.size", 0)


_default_cache: SignatureCache | None = SignatureCache()


def default_cache() -> SignatureCache | None:
    """The process-wide shared cache, or ``None`` when caching is disabled."""
    return _default_cache


def set_default_cache(cache: SignatureCache | None) -> SignatureCache | None:
    """Replace the shared cache (``None`` disables); returns the old one."""
    global _default_cache
    old = _default_cache
    _default_cache = cache
    return old
