"""Blocks and block headers (paper §1, items 1–4).

"The blockchain consists of a set of blocks, each one of which aggregates a
number of transactions.  Each block contains a cryptographic hash of the
previous block, thereby turning the set into a tree."  The chain module
turns the tree into a list by the longest-(work-)branch rule.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from functools import cached_property

from repro import obs
from repro.bitcoin.pow import check_proof_of_work
from repro.bitcoin.transaction import Transaction, read_varint, varint
from repro.crypto.hashing import sha256d
from repro.crypto.merkle import merkle_root

MAX_BLOCK_SIZE = 1_000_000

HEADER_SIZE = 80

# The whole 80-byte header in one precompiled struct: version, prev hash,
# merkle root, timestamp, bits, nonce.
_HEADER = struct.Struct("<I32s32sIII")


@dataclass(frozen=True)
class BlockHeader:
    """The 80-byte committed header: what miners actually hash."""

    prev_hash: bytes
    merkle_root: bytes
    timestamp: int
    bits: int
    nonce: int = 0
    version: int = 1

    def serialize(self) -> bytes:
        return (
            self.version.to_bytes(4, "little")
            + self.prev_hash
            + self.merkle_root
            + self.timestamp.to_bytes(4, "little")
            + self.bits.to_bytes(4, "little")
            + self.nonce.to_bytes(4, "little")
        )

    @staticmethod
    def parse(data) -> "BlockHeader":
        """Decode the 80 committed bytes (bytes or memoryview) in one
        struct read; extra bytes after the header are the caller's
        (``Block.parse`` continues into the transaction list)."""
        if len(data) < HEADER_SIZE:
            raise ValueError(
                f"truncated block header: need {HEADER_SIZE} bytes, "
                f"have {len(data)}"
            )
        version, prev_hash, root, timestamp, bits, nonce = _HEADER.unpack_from(
            data, 0
        )
        return BlockHeader(
            version=version,
            prev_hash=prev_hash,
            merkle_root=root,
            timestamp=timestamp,
            bits=bits,
            nonce=nonce,
        )

    @cached_property
    def hash(self) -> bytes:
        return sha256d(self.serialize())

    @property
    def hash_hex(self) -> str:
        return self.hash[::-1].hex()

    def meets_target(self) -> bool:
        return check_proof_of_work(self.hash, self.bits)

    def with_nonce(self, nonce: int) -> "BlockHeader":
        return replace(self, nonce=nonce)


@dataclass(frozen=True)
class Block:
    """A header plus the transactions it commits to."""

    header: BlockHeader
    txs: tuple[Transaction, ...]

    def __init__(self, header: BlockHeader, txs):
        object.__setattr__(self, "header", header)
        object.__setattr__(self, "txs", tuple(txs))

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def hash_hex(self) -> str:
        return self.header.hash_hex

    def serialize(self) -> bytes:
        """Full wire encoding: header, tx count varint, transactions."""
        out = bytearray(self.header.serialize())
        out += varint(len(self.txs))
        for tx in self.txs:
            out += tx.serialize()
        return bytes(out)

    @staticmethod
    def parse(data, strict: bool = True) -> "Block":
        """Parse a full block off a bytes or memoryview buffer.

        One memoryview wraps the buffer and every transaction decodes in
        place from it — large-block ingest no longer copies each
        transaction's bytes before parsing them.  Truncation raises
        :class:`ValueError` with offset context; ``strict`` (the default)
        also rejects trailing bytes, since every caller frames blocks
        exactly.
        """
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("parse")
        try:
            buf = data if isinstance(data, memoryview) else memoryview(data)
            header = BlockHeader.parse(buf)
            count, offset = read_varint(buf, HEADER_SIZE)
            txs = []
            for _ in range(count):
                tx, offset = Transaction.parse_from(buf, offset)
                txs.append(tx)
            if strict and offset != len(buf):
                raise ValueError(
                    f"trailing bytes after block: parsed {offset} of "
                    f"{len(buf)}"
                )
            return Block(header, txs)
        finally:
            if prof is not None:
                prof.exit()

    def compute_merkle_root(self) -> bytes:
        return merkle_root([tx.txid for tx in self.txs])

    def serialized_size(self) -> int:
        return len(self.header.serialize()) + sum(
            len(tx.serialize()) for tx in self.txs
        )

    def validate_structure(self) -> None:
        """Context-free block checks: merkle commitment, coinbase placement."""
        from repro.bitcoin.validation import ValidationError, check_transaction

        if not self.txs:
            raise ValidationError("block has no transactions")
        if self.compute_merkle_root() != self.header.merkle_root:
            raise ValidationError("merkle root mismatch")
        if not self.txs[0].is_coinbase:
            raise ValidationError("first transaction must be coinbase")
        for tx in self.txs[1:]:
            if tx.is_coinbase:
                raise ValidationError("multiple coinbase transactions")
        for tx in self.txs:
            check_transaction(tx)
        if self.serialized_size() > MAX_BLOCK_SIZE:
            raise ValidationError("block exceeds size limit")


def build_block(
    prev_hash: bytes,
    txs: list[Transaction],
    timestamp: int,
    bits: int,
    nonce: int = 0,
) -> Block:
    """Assemble a block with a correct merkle root (not yet mined)."""
    root = merkle_root([tx.txid for tx in txs])
    header = BlockHeader(
        prev_hash=prev_hash,
        merkle_root=root,
        timestamp=timestamp,
        bits=bits,
        nonce=nonce,
    )
    return Block(header, txs)
