"""Proof of work: compact targets, work accounting, difficulty retargeting.

Paper §1: "the block's cryptographic hash, viewed as an integer, must be less
than a given target" (fn. 3), and "Bitcoin dynamically adjusts the mining
difficulty so that new blocks are always generated approximately every ten
minutes, even as the computational power of the network changes" (fn. 4).
Experiment E2 exercises the retarget rule directly.
"""

from __future__ import annotations

from repro import obs

BLOCK_INTERVAL_TARGET = 600  # seconds: ten minutes
RETARGET_WINDOW = 2016  # blocks per difficulty period (two weeks)
MAX_ADJUSTMENT_FACTOR = 4  # retarget clamps, as in Bitcoin

# An easy ceiling target for simulated networks (regtest-like).
REGTEST_TARGET = 2**252
# Mainnet-style maximum target (difficulty 1).
MAX_TARGET = 0xFFFF * 2 ** (8 * (0x1D - 3))


def target_to_bits(target: int) -> int:
    """Encode a target integer into Bitcoin's compact 'bits' form."""
    if target <= 0:
        raise ValueError("target must be positive")
    size = (target.bit_length() + 7) // 8
    if size <= 3:
        mantissa = target << (8 * (3 - size))
    else:
        mantissa = target >> (8 * (size - 3))
    # Compact form is sign-magnitude: avoid setting the sign bit.
    if mantissa & 0x800000:
        mantissa >>= 8
        size += 1
    return (size << 24) | mantissa


def bits_to_target(bits: int) -> int:
    """Decode the compact 'bits' form back into a target integer."""
    size = bits >> 24
    mantissa = bits & 0x007FFFFF
    if bits & 0x00800000:
        raise ValueError("negative target")
    if size <= 3:
        return mantissa >> (8 * (3 - size))
    return mantissa << (8 * (size - 3))


def check_proof_of_work(block_hash: bytes, bits: int) -> bool:
    """Is the hash, viewed as a (little-endian) integer, below the target?"""
    return int.from_bytes(block_hash, "little") < bits_to_target(bits)


def block_work(bits: int) -> int:
    """Expected hashes to find a block at this target (chain-work unit).

    work = 2²⁵⁶ / (target + 1), as Bitcoin Core computes it.
    """
    return 2**256 // (bits_to_target(bits) + 1)


def next_target(
    current_target: int,
    first_block_time: int,
    last_block_time: int,
    max_target: int = MAX_TARGET,
    window: int = RETARGET_WINDOW,
    interval: int = BLOCK_INTERVAL_TARGET,
) -> int:
    """Retarget rule: scale by actual/expected timespan, clamped to 4x.

    ``first_block_time`` is the timestamp of the first block of the closing
    period and ``last_block_time`` that of its final block.
    """
    expected = (window - 1) * interval
    actual = last_block_time - first_block_time
    actual = max(expected // MAX_ADJUSTMENT_FACTOR, actual)
    actual = min(expected * MAX_ADJUSTMENT_FACTOR, actual)
    new_target = min(current_target * actual // expected, max_target)
    if obs.ENABLED:
        # One event per retarget computation (the chain calls this once per
        # window boundary per validated header).
        obs.inc("pow.retargets_total")
        obs.emit(
            "pow.retarget",
            old_target=f"{current_target:x}",
            new_target=f"{new_target:x}",
            ratio=new_target / current_target,
        )
    return new_target


def difficulty(target: int, max_target: int = MAX_TARGET) -> float:
    """Human-facing difficulty: how much harder than the easiest target."""
    return max_target / target
