"""The memory pool: relay policy and pending transactions (paper §3.3).

"A very small number of script schemas are deemed to be *standard*, and most
Bitcoin nodes will not forward transactions that use non-standard scripts.
Thus, while non-standard scripts are legal when they appear in blocks,
participants cannot get non-standard scripts into a block unless they
control a miner."  The mempool is where that policy lives: consensus
validity is necessary but not sufficient for relay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.standard import ScriptType, classify, is_standard
from repro.bitcoin.transaction import OutPoint, Transaction
from repro.bitcoin.validation import ValidationError, check_tx_inputs

DEFAULT_MIN_FEE_RATE = 1  # satoshis per byte
DUST_THRESHOLD = 546  # satoshis; outputs below this are not relayed


class MempoolError(Exception):
    """A transaction was refused by mempool policy or validity checks."""


class MempoolValidationError(MempoolError):
    """Refused because the transaction is *consensus-invalid* (bad script,
    missing input, value overflow) — not merely against relay policy.

    Peers distinguish the two when scoring misbehavior: an honest node can
    innocently relay a policy-refused or stale transaction, but it never
    relays one that fails consensus validation, so only this subclass
    carries misbehavior points (see ``Node.submit_transaction``).
    """


@dataclass
class MempoolEntry:
    tx: Transaction
    fee: int
    size: int

    @property
    def fee_rate(self) -> float:
        return self.fee / self.size


class Mempool:
    """Pending transactions awaiting inclusion in a block."""

    def __init__(
        self,
        chain: Blockchain,
        min_fee_rate: int = DEFAULT_MIN_FEE_RATE,
        require_standard: bool = True,
    ):
        self.chain = chain
        self.min_fee_rate = min_fee_rate
        self.require_standard = require_standard
        self._entries: dict[bytes, MempoolEntry] = {}
        self._spent: dict[OutPoint, bytes] = {}  # outpoint -> spending txid
        chain.add_reorg_listener(self._on_reorg)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._entries

    def get(self, txid: bytes) -> Transaction | None:
        entry = self._entries.get(txid)
        return entry.tx if entry else None

    def spent_outpoints(self) -> list[OutPoint]:
        """Every outpoint some pooled transaction spends.

        Chained unconfirmed spends are unsupported (see :meth:`_accept`),
        so each of these must still be unspent in ``chain.utxos`` — the
        disjointness invariant :mod:`repro.obs.monitor` samples.
        """
        return list(self._spent)

    def transactions(self) -> list[MempoolEntry]:
        """Entries ordered by descending fee rate (miner's preference)."""
        return sorted(
            self._entries.values(), key=lambda e: e.fee_rate, reverse=True
        )

    def accept(self, tx: Transaction) -> MempoolEntry:
        """Validate ``tx`` against the chain tip + pool and admit it.

        Raises :class:`MempoolError` with a reason when refused.
        """
        if not obs.ENABLED:
            return self._accept(tx)
        try:
            entry = self._accept(tx)
        except MempoolError as exc:
            obs.inc("mempool.rejected_total")
            obs.emit("tx.rejected", txid=tx.txid, reason=str(exc))
            raise
        obs.inc("mempool.accepted_total")
        obs.gauge_set("mempool.size", len(self._entries))
        obs.emit("tx.accepted", txid=tx.txid, fee=entry.fee, size=entry.size)
        return entry

    def _accept(self, tx: Transaction) -> MempoolEntry:
        txid = tx.txid
        if txid in self._entries:
            raise MempoolError("transaction already in mempool")
        if tx.is_coinbase:
            raise MempoolError("coinbase transactions cannot be relayed")
        if self.chain.get_transaction(txid) is not None:
            raise MempoolError("transaction already confirmed")

        for txin in tx.vin:
            if txin.prevout in self._spent:
                raise MempoolError(
                    f"input {txin.prevout} double-spends a mempool transaction"
                )
            # Inputs may come from the chain; spending other mempool outputs
            # (chained unconfirmed transactions) is deliberately not
            # supported: Typecoin's latency story (§3.2) assumes each
            # transaction confirms independently.

        if self.require_standard:
            self._check_standard(tx)

        from repro.bitcoin.validation import is_final

        if not is_final(
            tx, self.chain.height + 1, self.chain.median_time_past()
        ):
            raise MempoolError("transaction is not final (locktime)")

        # Full input validation also warms the process-wide signature cache
        # (repro.bitcoin.sigcache): when a block containing this transaction
        # is connected later, its ECDSA checks are cache hits.
        try:
            validity = check_tx_inputs(tx, self.chain.utxos, self.chain.height + 1)
        except ValidationError as exc:
            raise MempoolValidationError(str(exc)) from exc

        size = len(tx.serialize())
        if validity.fee < self.min_fee_rate * size:
            raise MempoolError(
                f"fee {validity.fee} below minimum rate for {size} bytes"
            )

        entry = MempoolEntry(tx=tx, fee=validity.fee, size=size)
        self._entries[txid] = entry
        for txin in tx.vin:
            self._spent[txin.prevout] = txid
        return entry

    def _check_standard(self, tx: Transaction) -> None:
        for index, out in enumerate(tx.vout):
            classified = classify(out.script_pubkey)
            if classified.type is ScriptType.NONSTANDARD:
                raise MempoolError(f"output {index} uses a non-standard script")
            if (
                classified.type is not ScriptType.OP_RETURN
                and out.value < DUST_THRESHOLD
            ):
                raise MempoolError(f"output {index} is dust ({out.value} sat)")

    def clear(self) -> int:
        """Drop every entry (a crash loses the mempool); returns the count."""
        dropped = len(self._entries)
        self._entries.clear()
        self._spent.clear()
        if obs.ENABLED:
            obs.gauge_set("mempool.size", 0)
        return dropped

    def remove(self, txid: bytes) -> None:
        entry = self._entries.pop(txid, None)
        if entry is None:
            return
        for txin in entry.tx.vin:
            self._spent.pop(txin.prevout, None)

    def remove_confirmed(self, txs: list[Transaction]) -> None:
        """Drop transactions (and conflicts) once a block confirms them."""
        for tx in txs:
            self.remove(tx.txid)
            # Also evict anything that conflicts with a confirmed spend.
            for txin in tx.vin:
                conflicting = self._spent.get(txin.prevout)
                if conflicting is not None:
                    self.remove(conflicting)

    def _on_reorg(self, disconnected, connected) -> int:
        """Re-inject the losing branch's transactions after a reorg.

        Without this a reorg silently *loses* transactions: they leave the
        mempool when their block confirms, and disconnecting that block
        puts them nowhere.  Each disconnected-block transaction not
        re-confirmed on the winning branch goes back through normal
        acceptance (which re-checks inputs against the post-reorg UTXO
        set — conflicted or no-longer-mature spends simply stay out).
        Returns the number re-injected.
        """
        winning = {
            tx.txid for entry in connected for tx in entry.block.txs
        }
        reinjected = 0
        # ``disconnected`` arrives tip-first; re-inject oldest-first so
        # earlier transactions (whose outputs later ones may spend once
        # re-mined) keep their relative order in fee-rate ties.
        for entry in reversed(disconnected):
            for tx in entry.block.txs:
                if tx.is_coinbase or tx.txid in winning:
                    continue
                try:
                    self.accept(tx)
                except MempoolError:
                    continue  # conflicted, immature, or already present
                reinjected += 1
        if obs.ENABLED:
            obs.inc("mempool.reinjected_total", reinjected)
            obs.emit(
                "mempool.reinjected",
                count=reinjected,
                depth=len(disconnected),
            )
        return reinjected

    def revalidate(self) -> list[Transaction]:
        """Re-check every entry after a reorg; returns evicted transactions."""
        evicted = []
        for txid in list(self._entries):
            entry = self._entries[txid]
            try:
                check_tx_inputs(entry.tx, self.chain.utxos, self.chain.height + 1)
            except ValidationError:
                self.remove(txid)
                evicted.append(entry.tx)
        if obs.ENABLED:
            if evicted:
                obs.inc("mempool.evicted_total", len(evicted))
            obs.gauge_set("mempool.size", len(self._entries))
        return evicted
