"""Headers-first catch-up synchronization for the P2P simulator.

A node that reconnects after a partition heal or a restart — or that
receives an orphan block and realizes it is behind — cannot rely on
gossip alone: the relays it missed are gone.  Real networks dedicate
whole protocol documents to this recovery path (Lightning BOLT #2's
reconnection/retransmission rules are the closest analogue); Bitcoin
Core's answer is the getheaders/getdata dance this module models:

1. send the peer a block locator (dense near our tip, exponentially
   sparse toward genesis, :meth:`Blockchain.locator`);
2. the peer answers with the active-chain hashes after the first
   locator entry it recognizes (:meth:`Blockchain.hashes_after`);
3. request each unknown block in order (parents first, so nothing is
   parked as an orphan), submitting each through normal validation;
4. repeat from (1) until a headers round brings nothing new.

Every request leg travels over the same faulty links as gossip — it can
be dropped, duplicated or delayed by the edge's
:class:`~repro.bitcoin.faults.LinkPolicy` — so each round-trip carries a
per-request timeout with exponential backoff and capped retries.  A
session that exhausts its retries fails (``sync.failed``); the next
orphan or reconnect starts a fresh one.  At most one session per
(node, peer) pair is active at a time.

All progress is observable: ``sync.started`` / ``sync.headers`` /
``sync.request`` / ``sync.timeout`` / ``sync.completed`` /
``sync.failed`` events plus the ``sync.*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.backoff import backoff_delay, derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.bitcoin.block import Block
    from repro.bitcoin.network import Node

__all__ = ["SyncConfig", "SyncSession", "start_sync"]


@dataclass(frozen=True)
class SyncConfig:
    """Retry/timeout knobs for one catch-up session."""

    timeout: float = 30.0  # seconds before a request is presumed lost
    backoff: float = 2.0  # timeout multiplier per retry
    max_timeout: float = 240.0  # cap on the backed-off timeout
    jitter: float = 0.2  # ± fraction of timeout, seeded per (node, peer)
    max_retries: int = 4  # attempts per request before the session fails
    max_headers: int = 2000  # hashes per getheaders response


def start_sync(
    node: "Node",
    peer: "Node",
    reason: str = "reconnect",
    config: SyncConfig | None = None,
) -> "SyncSession | None":
    """Begin a catch-up sync of ``node`` from ``peer``.

    Returns the new session, or None when one is already running against
    that peer (reconnect storms and orphan floods collapse into a single
    session) or the node is down.
    """
    if not node.alive:
        return None
    if peer.name in node._syncs:
        return None
    session = SyncSession(node, peer, reason, config or SyncConfig())
    node._syncs[peer.name] = session
    session.start()
    return session


class SyncSession:
    """One headers-first catch-up exchange between a node and a peer."""

    def __init__(
        self, node: "Node", peer: "Node", reason: str, config: SyncConfig
    ):
        self.node = node
        self.peer = peer
        self.reason = reason
        self.config = config
        # Jitter decorrelates (node, peer) pairs that time out together —
        # without it, every reconnecting peer re-requests in lockstep and
        # re-creates the loss burst that failed them.  The stream derives
        # from the simulation seed and the pair identity, NOT sim.rng:
        # drawing from the shared stream would perturb every seeded
        # scenario pinned by the recorded benchmark trajectories.
        self._backoff_rng = derive_rng(
            "sync-backoff", node.sim.seed, node.name, peer.name
        )
        self.done = False
        self.succeeded = False
        self.blocks_fetched = 0
        self._pending: list[bytes] = []
        # Monotonic request id; a reply or timeout for anything but the
        # latest outstanding request is stale and ignored.
        self._req_seq = 0
        self._outstanding: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if obs.ENABLED:
            obs.inc("sync.sessions_total")
            obs.emit(
                "sync.started",
                node=self.node.name,
                peer=self.peer.name,
                reason=self.reason,
            )
        self._request_headers(attempt=1)

    def abort(self, reason: str) -> None:
        """Tear the session down early (disconnect, ban, crash)."""
        self._finish(ok=False, reason=reason)

    def _finish(self, ok: bool, reason: str = "") -> None:
        if self.done:
            return
        self.done = True
        self.succeeded = ok
        if self.node._syncs.get(self.peer.name) is self:
            self.node._syncs.pop(self.peer.name, None)
        if obs.ENABLED:
            if ok:
                obs.emit(
                    "sync.completed",
                    node=self.node.name,
                    peer=self.peer.name,
                    blocks=self.blocks_fetched,
                )
            else:
                obs.inc("sync.failures_total")
                obs.emit(
                    "sync.failed",
                    node=self.node.name,
                    peer=self.peer.name,
                    reason=reason,
                )

    # ------------------------------------------------------------------
    # Request/response plumbing
    # ------------------------------------------------------------------

    def _roundtrip(
        self,
        what: str,
        attempt: int,
        make_reply: Callable[[], object],
        on_reply: Callable[[object], None],
        retry: Callable[[int], None],
        request_size: int = 0,
        reply_size: Callable[[object], int] | None = None,
    ) -> None:
        """One request over the link and back, with timeout + retry.

        Both legs ride :meth:`Node.send_to`, so either can be dropped or
        delayed by the edge's fault policy; ``make_reply`` runs on the
        peer's side *at arrival time* (the reply reflects the peer's
        state then, not when the request was sent).  ``request_size`` and
        ``reply_size(reply)`` feed the relay-byte accounting; both legs
        are charged to the ``sync`` message kind.
        """
        self._req_seq += 1
        req = self._req_seq
        self._outstanding = req
        node, peer = self.node, self.peer

        def deliver(reply: object) -> None:
            if self.done or not node.alive:
                return
            if self._outstanding != req:
                return  # timed out and retried; stale reply
            self._outstanding = None
            on_reply(reply)

        def peer_side() -> None:
            if self.done or not peer.alive:
                return  # request reached a dead host: no reply, timeout
            reply = make_reply()
            peer.send_to(
                node,
                lambda: deliver(reply),
                msg="sync",
                size=reply_size(reply) if reply_size is not None else 0,
            )

        if obs.ENABLED:
            obs.emit(
                "sync.request",
                node=node.name,
                peer=peer.name,
                what=what,
                attempt=attempt,
            )
        node.send_to(peer, peer_side, msg="sync", size=request_size)

        timeout = backoff_delay(
            attempt,
            base=self.config.timeout,
            cap=self.config.max_timeout,
            factor=self.config.backoff,
            jitter=self.config.jitter,
            rng=self._backoff_rng,
        )

        def on_timeout() -> None:
            if self.done or self._outstanding != req:
                return
            self._outstanding = None
            if obs.ENABLED:
                obs.inc("sync.timeouts_total")
                obs.emit(
                    "sync.timeout",
                    node=node.name,
                    peer=peer.name,
                    what=what,
                    attempt=attempt,
                )
            if attempt >= self.config.max_retries:
                self._finish(ok=False, reason=f"{what}: retries exhausted")
                return
            if obs.ENABLED:
                obs.inc("sync.retries_total")
            retry(attempt + 1)

        node.sim.schedule(timeout, on_timeout)

    # ------------------------------------------------------------------
    # Protocol stages
    # ------------------------------------------------------------------

    def _request_headers(self, attempt: int) -> None:
        locator = self.node.chain.locator()

        def make_reply() -> object:
            return self.peer.chain.hashes_after(
                locator, self.config.max_headers
            )

        def reply_size(hashes: object) -> int:
            return 9 + 32 * len(hashes)  # varint count + hashes

        def on_reply(hashes: object) -> None:
            assert isinstance(hashes, list)
            if obs.ENABLED:
                obs.emit(
                    "sync.headers",
                    node=self.node.name,
                    peer=self.peer.name,
                    count=len(hashes),
                )
            self._pending = [
                h for h in hashes if not self.node.chain.has_block(h)
            ]
            if not self._pending:
                # Nothing the peer has that we don't: caught up.
                self._finish(ok=True)
                return
            self._next_block()

        self._roundtrip(
            "headers",
            attempt,
            make_reply,
            on_reply,
            self._request_headers,
            request_size=9 + 32 * len(locator),
            reply_size=reply_size,
        )

    def _next_block(self) -> None:
        while self._pending:
            block_hash = self._pending.pop(0)
            if self.node.chain.has_block(block_hash):
                continue  # arrived via gossip while we were fetching
            self._request_block(block_hash, attempt=1)
            return
        # Batch exhausted; the peer's tip may have advanced (or the batch
        # was clipped at max_headers) — ask for headers again.  A round
        # that brings nothing new completes the session.
        self._request_headers(attempt=1)

    def _request_block(
        self, block_hash: bytes, attempt: int, full: bool = False
    ) -> None:
        """Fetch one block; compact form when both ends opted in.

        With compact relay enabled on both endpoints the peer answers
        with a :class:`~repro.bitcoin.compact.CompactBlock` (unless the
        block is coinbase-only, where short ids save nothing).  The
        receiver attempts a *local-only* reconstruction — no extra
        round-trip — and on any miss simply re-requests the full block
        (``full=True``): catch-up blocks are usually past the mempool's
        horizon, so the miss path must stay a single clean retry.
        """

        def make_reply() -> object:
            entry = self.peer.chain.entry(block_hash)
            if entry is None:
                return None
            # A fetched block continues the peer's propagation tree one
            # hop deeper, exactly like a gossip relay would have.
            hop = self.peer._block_hops.get(block_hash, 0) + 1
            block = entry.block
            if (
                not full
                and self.node.compact_relay
                and self.peer.compact_relay
                and len(block.txs) > 1
            ):
                from repro.bitcoin.compact import CompactBlock

                return (
                    "compact",
                    CompactBlock.from_block(
                        block, salt=self.peer.name.encode()
                    ),
                    hop,
                )
            return ("block", block, hop)

        def reply_size(reply: object) -> int:
            if reply is None:
                return 40
            _, payload, _ = reply
            return payload.serialized_size()

        def on_reply(reply: object) -> None:
            if reply is None:
                # The peer no longer has (or never had) the block — it
                # reorged away between headers and getdata.  Re-anchor.
                self._request_headers(attempt=1)
                return
            kind, payload, hop = reply
            if kind == "compact":
                block = self._reconstruct_local(payload)
                if block is None:
                    # Mempool miss or false match: one clean full retry.
                    if obs.ENABLED:
                        obs.inc("sync.compact_fallback_total")
                    self._request_block(block_hash, attempt=1, full=True)
                    return
                if obs.ENABLED:
                    obs.inc("sync.compact_hits_total")
            else:
                block = payload
            self.blocks_fetched += 1
            if obs.ENABLED:
                obs.inc("sync.blocks_fetched_total")
            self.node.submit_block(block, origin=self.peer, hop=hop)
            if self.done or not self.node.alive:
                return
            self._next_block()

        self._roundtrip(
            f"block:{block_hash.hex()[:12]}",
            attempt,
            make_reply,
            on_reply,
            lambda next_attempt: self._request_block(
                block_hash, next_attempt, full=full
            ),
            request_size=36,
            reply_size=reply_size,
        )

    def _reconstruct_local(self, cb) -> "Block | None":
        """Mempool-only reconstruction of a compact sync reply (no
        getblocktxn round-trip; None means fall back to a full fetch)."""
        from repro.bitcoin.compact import (
            MalformedCompactError,
            finalize,
            reconstruct,
        )

        try:
            result = reconstruct(cb, self.node.mempool)
        except MalformedCompactError:
            return None
        if not result.complete:
            return None
        return finalize(cb, result.txs)
