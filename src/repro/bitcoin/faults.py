"""Chaos layer: fault injection for the P2P network simulator.

The paper's security argument (§1 items 3–6) is statistical — a
confirmation is trustworthy only because honest nodes converge *despite*
latency, message loss, crashes, and an active attacker.  A simulator
with a perfect network proves nothing about that claim; this module
turns it into a testbed:

* :class:`LinkPolicy` — seeded per-edge drop / duplicate / reorder
  probabilities and latency spikes, consulted by :meth:`Node.send_to`;
* :class:`Partition` — severs the edges between node groups at a
  simulated time and heals them later, kicking a headers-first catch-up
  sync (:mod:`repro.bitcoin.sync`) on every healed edge;
* :class:`ByzantinePeer` — an adversary that feeds invalid blocks,
  stale-tip forks, double-spends, and orphan spam, countered by per-peer
  misbehavior scoring with ban thresholds and the bounded orphan pool;
* :data:`PROFILES` / :func:`run_chaos` — named, seeded fault scenarios
  whose convergence the chaos benchmark and ``scripts/check.sh --chaos``
  assert.

Everything draws randomness from the simulation's seeded RNG, so every
chaos run — including the attacker's schedule — is exactly reproducible
from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random

from repro import obs
from repro.bitcoin.block import Block, build_block
from repro.bitcoin.chain import Blockchain, ChainParams, block_subsidy
from repro.bitcoin.network import Node, PoissonMiner, Simulation, build_network
from repro.bitcoin.pow import block_work, target_to_bits
from repro.bitcoin.script import Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.wallet import Wallet

__all__ = [
    "LinkPlan",
    "LinkPolicy",
    "Partition",
    "ByzantinePeer",
    "ALL_BEHAVIORS",
    "BYZANTINE_BEHAVIORS",
    "ChaosProfile",
    "ChaosResult",
    "KillMidWriteResult",
    "PROFILES",
    "SERVICE_PROFILES",
    "ServiceChaosProfile",
    "ServiceChaosResult",
    "install_link_policy",
    "inject_supply_inflation",
    "inject_torn_write",
    "converged",
    "run_chaos",
    "run_kill_mid_write",
    "run_service_chaos",
]


# ----------------------------------------------------------------------
# Faulty links
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LinkPlan:
    """The fate of one message: zero, one, or two scheduled deliveries."""

    delays: tuple[float, ...]
    dropped: bool = False
    duplicated: bool = False
    spike: float = 0.0  # extra latency added by a spike, if any


@dataclass(frozen=True)
class LinkPolicy:
    """Per-edge fault probabilities, evaluated per message.

    Installed on a node with :meth:`Node.set_link_policy` (directional —
    each end of an edge can fail differently).  All draws come from the
    simulation RNG passed to :meth:`plan`, and draws are skipped for
    zero-probability faults, so a policy only perturbs the random stream
    for the faults it actually configures.
    """

    drop: float = 0.0  # P(message silently lost)
    duplicate: float = 0.0  # P(delivered twice)
    reorder: float = 0.0  # P(extra jitter lets later messages overtake)
    spike: float = 0.0  # P(latency spike)
    spike_mean: float = 30.0  # mean extra seconds when spiked
    reorder_window: float = 10.0  # max extra jitter seconds

    def plan(self, rng: random.Random, base_delay: float) -> LinkPlan:
        if self.drop > 0.0 and rng.random() < self.drop:
            return LinkPlan(delays=(), dropped=True)
        delay = base_delay
        spike = 0.0
        if self.spike > 0.0 and rng.random() < self.spike:
            spike = rng.expovariate(1.0 / self.spike_mean)
            delay += spike
        if self.reorder > 0.0 and rng.random() < self.reorder:
            delay += rng.uniform(0.0, self.reorder_window)
        if self.duplicate > 0.0 and rng.random() < self.duplicate:
            echo = delay + rng.uniform(0.0, self.reorder_window)
            return LinkPlan(
                delays=(delay, echo), duplicated=True, spike=spike
            )
        return LinkPlan(delays=(delay,), spike=spike)


def install_link_policy(nodes: list[Node], policy: LinkPolicy | None) -> int:
    """Apply one policy to every existing edge among ``nodes``, both
    directions; returns the number of directed edges configured."""
    edges = 0
    for node in nodes:
        for peer in node.peers:
            node.set_link_policy(peer, policy)
            edges += 1
    return edges


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------


class Partition:
    """Severs every edge between two node groups, healing them later.

    Healing reconnects exactly the edges it severed (bans are honored —
    a node that banned its ex-peer during the partition stays
    disconnected) and starts a catch-up sync in both directions on each
    healed edge, so both sides converge to the most-work chain.
    """

    def __init__(
        self, sim: Simulation, group_a: list[Node], group_b: list[Node]
    ):
        self.sim = sim
        self.group_a = group_a
        self.group_b = group_b
        self.active = False
        self._severed: list[tuple[Node, Node]] = []

    def _groups_label(self) -> str:
        return (
            ",".join(n.name for n in self.group_a)
            + "|"
            + ",".join(n.name for n in self.group_b)
        )

    def begin(self) -> int:
        """Sever the cross-group edges now; returns how many were cut."""
        if self.active:
            return 0
        self.active = True
        for a in self.group_a:
            for b in self.group_b:
                if b in a.peers:
                    a.disconnect(b)
                    self._severed.append((a, b))
        if obs.ENABLED:
            obs.inc("fault.partitions_total")
            obs.emit("fault.partition", groups=self._groups_label())
        return len(self._severed)

    def heal(self) -> int:
        """Restore the severed edges and sync both ways; returns how many
        edges came back."""
        if not self.active:
            return 0
        self.active = False
        severed, self._severed = self._severed, []
        healed = 0
        if obs.ENABLED:
            obs.inc("fault.heals_total")
            obs.emit("fault.heal", groups=self._groups_label())
        from repro.bitcoin.sync import start_sync

        for a, b in severed:
            a.connect(b)
            if b not in a.peers:
                continue  # ban or crash kept the edge down
            healed += 1
            start_sync(a, b, reason="heal")
            start_sync(b, a, reason="heal")
        return healed

    def schedule(self, at: float, heal_at: float) -> None:
        """Arrange the episode: sever at ``at``, heal at ``heal_at``
        (absolute simulated times)."""
        if heal_at <= at:
            raise ValueError("heal must come after the partition begins")
        self.sim.schedule(max(0.0, at - self.sim.now), self.begin)
        self.sim.schedule(max(0.0, heal_at - self.sim.now), self.heal)


# ----------------------------------------------------------------------
# Adversarial peers
# ----------------------------------------------------------------------

BYZANTINE_BEHAVIORS = (
    "invalid_block",
    "stale_fork",
    "orphan_spam",
    "double_spend",
)

#: Every behavior an adversary can be configured with.  The default
#: tuple above is frozen (the seeded byzantine profiles replay their
#: exact attack schedule); protocol-specific attacks are opt-in.
ALL_BEHAVIORS = BYZANTINE_BEHAVIORS + ("garbage_compact",)


class ByzantinePeer:
    """An adversary wrapped around a normal :class:`Node`.

    The underlying node gossips honestly (so the attacker stays connected
    and informed), while this controller periodically pushes attacks at
    its peers, cycling through ``behaviors``:

    * ``invalid_block`` — a block with wrong difficulty bits: consensus-
      invalid, worth :data:`~repro.bitcoin.network.POINTS_INVALID_BLOCK`
      misbehavior points at each victim (two of these cross the default
      ban threshold);
    * ``stale_fork`` — a valid block extending an ancestor several
      blocks behind the tip: costs the victims storage but no reorg (the
      most-work rule holds), and no penalty — honest races produce stale
      blocks too;
    * ``orphan_spam`` — blocks with fabricated parent hashes, parked in
      the victims' orphan pools until the bounded pool evicts them;
    * ``double_spend`` — two conflicting signed spends of the same
      mature output, each half of the network fed a different one; if
      the attacker has no funds yet it falls back to conflicting spends
      of a fabricated outpoint (consensus-invalid, penalized);
    * ``garbage_compact`` — a compact announcement (plausible header,
      prefilled coinbase) whose short ids match nothing anywhere: each
      victim round-trips ``getblocktxn``, the attacker cannot back the
      announcement with data, and the victim scores
      :data:`~repro.bitcoin.network.POINTS_BAD_COMPACT` withheld points
      (ten of these cross the default ban threshold).

    Give the wrapped node a :class:`PoissonMiner` with
    ``key_hash=byz.wallet.key_hash`` to fund real double-spends.
    """

    def __init__(
        self,
        node: Node,
        behaviors: tuple[str, ...] = BYZANTINE_BEHAVIORS,
        interval: float = 1800.0,
        fork_depth: int = 3,
        spam_batch: int = 8,
    ):
        unknown = set(behaviors) - set(ALL_BEHAVIORS)
        if unknown:
            raise ValueError(f"unknown byzantine behaviors: {sorted(unknown)}")
        if not behaviors:
            raise ValueError("at least one behavior required")
        self.node = node
        self.behaviors = tuple(behaviors)
        self.interval = interval
        self.fork_depth = fork_depth
        self.spam_batch = spam_batch
        self.wallet = Wallet.from_seed(b"byzantine:" + node.name.encode())
        self.attacks_sent: dict[str, int] = {b: 0 for b in self.behaviors}
        self._ticks = 0
        self._nonce = 0
        self._spent: set[OutPoint] = set()

    def start(self) -> None:
        self.node.sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        if self.node.alive and self.node.peers:
            behavior = self.behaviors[self._ticks % len(self.behaviors)]
            getattr(self, "_attack_" + behavior)()
            self.attacks_sent[behavior] += 1
        self._ticks += 1
        self.node.sim.schedule(self.interval, self._tick)

    # -- helpers -------------------------------------------------------

    def _coinbase(self, height: int) -> Transaction:
        self._nonce += 1
        tag = Script(
            [height.to_bytes(4, "little"), self._nonce.to_bytes(4, "little")]
        )
        return Transaction(
            vin=[TxIn(OutPoint.null(), tag)],
            vout=[
                TxOut(block_subsidy(height), p2pkh_script(self.wallet.key_hash))
            ],
        )

    def _broadcast_block(self, block: Block) -> None:
        for peer in self.node.peers:
            self.node.send_to(
                peer,
                lambda p=peer: p.submit_block(block, origin=self.node),
                msg="block",
            )

    # -- attacks -------------------------------------------------------

    def _attack_invalid_block(self) -> None:
        chain = self.node.chain
        tip = chain.tip
        height = tip.height + 1
        bits = chain.required_bits(tip.block.hash)
        block = build_block(
            prev_hash=tip.block.hash,
            txs=[self._coinbase(height)],
            timestamp=chain.median_time_past() + 1,
            bits=bits + 1,  # consensus-invalid: wrong difficulty bits
        )
        self._broadcast_block(block)

    def _attack_stale_fork(self) -> None:
        chain = self.node.chain
        height = max(0, chain.height - self.fork_depth)
        prev = chain.block_at(height)
        block = build_block(
            prev_hash=prev.hash,
            txs=[self._coinbase(height + 1)],
            timestamp=chain.median_time_past(prev.hash) + 1,
            bits=chain.required_bits(prev.hash),
        )
        self._broadcast_block(block)

    def _attack_orphan_spam(self) -> None:
        rng = self.node.sim.rng
        chain = self.node.chain
        tip = chain.tip
        for _ in range(self.spam_batch):
            fake_parent = bytes(rng.getrandbits(8) for _ in range(32))
            block = build_block(
                prev_hash=fake_parent,
                txs=[self._coinbase(1)],
                timestamp=tip.block.header.timestamp + 1,
                bits=tip.block.header.bits,
            )
            self._broadcast_block(block)

    def _attack_double_spend(self) -> None:
        chain = self.node.chain
        fee = 10_000
        spendables = [
            s
            for s in self.wallet.spendables(chain)
            if s.outpoint not in self._spent and s.output.value > 2 * fee
        ]
        if spendables:
            sp = spendables[0]
            self._spent.add(sp.outpoint)
            value = sp.output.value - fee
            tx_a = Transaction(
                vin=[TxIn(sp.outpoint)],
                vout=[TxOut(value, p2pkh_script(self.wallet.key_hash))],
            )
            tx_b = Transaction(
                vin=[TxIn(sp.outpoint)],
                vout=[TxOut(value, p2pkh_script(b"\x42" * 20))],
            )
            scripts = [sp.output.script_pubkey]
            tx_a = self.wallet.sign_all(tx_a, scripts)
            tx_b = self.wallet.sign_all(tx_b, scripts)
        else:
            # Unfunded: conflicting spends of a fabricated outpoint.
            # Consensus-invalid at every victim (missing input).
            rng = self.node.sim.rng
            fake = OutPoint(bytes(rng.getrandbits(8) for _ in range(32)), 0)
            tx_a = Transaction(
                vin=[TxIn(fake)],
                vout=[TxOut(50_000, p2pkh_script(self.wallet.key_hash))],
            )
            tx_b = Transaction(
                vin=[TxIn(fake)],
                vout=[TxOut(50_000, p2pkh_script(b"\x42" * 20))],
            )
        for index, peer in enumerate(self.node.peers):
            tx = tx_a if index % 2 == 0 else tx_b
            self.node.send_to(
                peer,
                lambda p=peer, t=tx: p.submit_transaction(t, origin=self.node),
                msg="tx",
            )

    def _attack_garbage_compact(self) -> None:
        """A compact announcement nothing can reconstruct or back.

        The header plausibly extends the victim's tip and the coinbase is
        prefilled, so the announcement survives the malformedness checks;
        the short ids are random, so every victim misses on all of them
        and round-trips ``getblocktxn`` straight back to the attacker —
        who has no such block and must answer None, converting each
        announcement into withheld-data misbehavior points at every peer.
        """
        from repro.bitcoin.compact import CompactBlock, PrefilledTransaction

        rng = self.node.sim.rng
        chain = self.node.chain
        tip = chain.tip
        height = tip.height + 1
        coinbase = self._coinbase(height)
        shell = build_block(
            prev_hash=tip.block.hash,
            txs=[coinbase],
            timestamp=chain.median_time_past() + 1,
            bits=chain.required_bits(tip.block.hash),
        )
        cb = CompactBlock(
            header=shell.header,
            nonce=rng.getrandbits(64),
            short_ids=tuple(
                bytes(rng.getrandbits(8) for _ in range(6))
                for _ in range(self.spam_batch)
            ),
            prefilled=(PrefilledTransaction(0, coinbase),),
        )
        size = cb.serialized_size()
        for peer in self.node.peers:
            self.node.send_to(
                peer,
                lambda p=peer: p.submit_compact_block(cb, origin=self.node),
                msg="compact",
                size=size,
            )

    # -- reporting -----------------------------------------------------

    def banned_by(self, nodes: list[Node]) -> list[str]:
        """Names of the given nodes that have banned this adversary."""
        return [n.name for n in nodes if n.is_banned(self.node)]


# ----------------------------------------------------------------------
# Chaos profiles and the scenario runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosProfile:
    """A named, fully-parameterized fault scenario."""

    name: str
    node_count: int = 6
    miner_count: int = 4
    duration: float = 40 * 3600.0  # simulated seconds of fault activity
    interval: float = 600.0  # target block interval
    latency: float = 2.0  # mean one-hop delay
    link: LinkPolicy | None = None
    partition_at: float | None = None
    heal_at: float | None = None
    crash_at: float | None = None
    restart_at: float | None = None
    crash_persist: bool = True
    byzantine: tuple[str, ...] = ()
    byzantine_interval: float = 1800.0
    byzantine_mines: bool = False  # fund the adversary for double-spends
    compact_relay: bool = False  # opt every node into compact block relay
    convergence_budget: float = 4 * 3600.0  # grace period after duration


@dataclass
class ChaosResult:
    """Outcome of one seeded chaos run."""

    profile: str
    seed: int
    converged: bool
    convergence_time: float | None
    height: int
    tip: bytes
    blocks_found: int
    events_processed: int
    utxo_consistent: bool
    byzantine_banned_by: list[str] = field(default_factory=list)
    stop_reason: str = ""
    # Runtime invariant monitors (repro.obs.monitor), when enabled.
    monitor_checks: int = 0
    monitor_violations: int = 0


def converged(nodes: list[Node]) -> bool:
    """Do all live nodes agree on one most-work tip?"""
    tips = {n.chain.tip.block.hash for n in nodes if n.alive}
    return len(tips) == 1


def utxo_sets_match(nodes: list[Node]) -> bool:
    """Do all live nodes hold identical UTXO sets?  (With identical tips
    this must hold — divergence here means consensus state corruption.)"""
    live = [n for n in nodes if n.alive]
    if not live:
        return True
    reference = live[0].chain.utxos.snapshot()
    return all(n.chain.utxos.snapshot() == reference for n in live[1:])


PROFILES: dict[str, ChaosProfile] = {
    # 10% loss plus duplicates, reordering, and latency spikes on every
    # edge for the whole run.
    "lossy": ChaosProfile(
        name="lossy",
        link=LinkPolicy(
            drop=0.10, duplicate=0.05, reorder=0.10, spike=0.05,
            spike_mean=45.0,
        ),
    ),
    # One clean 2-partition episode: 8 simulated hours of divergent
    # mining, then heal and converge.
    "partitioned": ChaosProfile(
        name="partitioned",
        partition_at=8 * 3600.0,
        heal_at=16 * 3600.0,
    ),
    # A funded adversary cycling through every attack behavior.
    "byzantine": ChaosProfile(
        name="byzantine",
        byzantine=BYZANTINE_BEHAVIORS,
        byzantine_mines=True,
    ),
    # Compact relay under the same lossy links: getblocktxn/blocktxn
    # round-trips get dropped too, so the timeout -> retry -> full-block
    # fallback ladder must carry convergence.
    "compact-lossy": ChaosProfile(
        name="compact-lossy",
        compact_relay=True,
        link=LinkPolicy(
            drop=0.10, duplicate=0.05, reorder=0.10, spike=0.05,
            spike_mean=45.0,
        ),
    ),
    # An adversary feeding unreconstructable compact announcements; the
    # withheld-data penalty must get it banned while the honest swarm
    # keeps converging over compact relay.
    "compact-byzantine": ChaosProfile(
        name="compact-byzantine",
        compact_relay=True,
        byzantine=("garbage_compact",),
    ),
    # The acceptance scenario: 10% drop everywhere, one 2-partition
    # episode, one crash/restart, and one byzantine peer — all at once.
    "inferno": ChaosProfile(
        name="inferno",
        link=LinkPolicy(drop=0.10, duplicate=0.03, reorder=0.05),
        partition_at=6 * 3600.0,
        heal_at=12 * 3600.0,
        crash_at=20 * 3600.0,
        restart_at=24 * 3600.0,
        byzantine=BYZANTINE_BEHAVIORS,
        convergence_budget=8 * 3600.0,
    ),
}


# ----------------------------------------------------------------------
# Durable-store faults: kill-mid-write (torn/corrupt log tails)
# ----------------------------------------------------------------------


def inject_torn_write(
    store_dir: str,
    rng: random.Random,
    mode: str = "truncate",
    node: str = "",
) -> int:
    """Damage the tail of a (closed) store's block log at a seeded offset.

    Models the two ways a mid-append process death leaves the log:

    * ``truncate`` — the final record is cut short at a random byte (the
      write never finished reaching the disk);
    * ``corrupt`` — one random byte inside the final record's payload is
      flipped (a sector went bad under the write), so its CRC fails.

    Either way the damage is confined to the last record: recovery must
    truncate it and come back at the previous committed tip.  Returns the
    number of bytes damaged (0 if the log holds no records yet).
    """
    import os

    from repro.store.framing import scan_records
    from repro.store.store import BLOCK_LOG_MAGIC, BLOCK_LOG_NAME

    path = os.path.join(store_dir, BLOCK_LOG_NAME)
    scan = scan_records(path, BLOCK_LOG_MAGIC)
    if not scan.records:
        return 0
    size = os.path.getsize(path)
    last_start = scan.records[-1][0]
    if mode == "truncate":
        cut = rng.randrange(last_start + 1, size)
        with open(path, "r+b") as fh:
            fh.truncate(cut)
        damaged = size - cut
    elif mode == "corrupt":
        # Skip the 8-byte record header so the flip lands in the payload
        # and is caught as a CRC mismatch, not a framing tear.
        position = rng.randrange(last_start + 8, size)
        with open(path, "r+b") as fh:
            fh.seek(position)
            original = fh.read(1)
            fh.seek(position)
            fh.write(bytes([original[0] ^ 0xFF]))
        damaged = 1
    else:
        raise ValueError(f"unknown torn-write mode {mode!r}")
    if obs.ENABLED:
        obs.inc("fault.torn_writes_total")
        obs.emit(
            "fault.torn_write",
            node=node,
            file=BLOCK_LOG_NAME,
            mode=mode,
            bytes=damaged,
        )
    return damaged


def inject_supply_inflation(
    node: Node, amount: int = 50 * 100_000_000, salt: int = 0
) -> OutPoint:
    """Corrupt a node's UTXO table by conjuring ``amount`` satoshis from
    nowhere — the bug class the ``supply`` invariant monitor exists to
    catch (value that no coinbase ever minted).

    The bogus entry is added directly to the UTXO set, bypassing
    validation, exactly as a state-corruption bug would.  Returns the
    fabricated outpoint so a test can clean it up afterwards.
    """
    from repro.bitcoin.utxo import UTXOEntry

    outpoint = OutPoint(
        b"\xfa" * 28 + salt.to_bytes(4, "big"), 0xFFFF_FF00 + (salt & 0xFF)
    )
    node.chain.utxos.add(
        outpoint,
        UTXOEntry(
            output=TxOut(amount, p2pkh_script(b"\x99" * 20)),
            height=node.chain.height,
            is_coinbase=False,
        ),
    )
    if obs.ENABLED:
        obs.inc("fault.inflations_total")
        obs.emit("fault.inflation", node=node.name, amount=amount)
    return outpoint


@dataclass
class KillMidWriteResult:
    """Outcome of one seeded kill-mid-write scenario."""

    seed: int
    mode: str
    pre_crash_height: int
    recovered_height: int
    tip_match: bool  # recovered tip == independently replayed tip
    utxo_match: bool  # recovered UTXO size + value match that replay
    refetched_blocks: int  # blocks the catch-up sync must re-download
    converged: bool
    final_height: int

    @property
    def ok(self) -> bool:
        return (
            self.tip_match
            and self.utxo_match
            and self.converged
            # Only the torn-off suffix may be re-fetched from peers.
            and self.refetched_blocks <= 1
        )


def run_kill_mid_write(
    store_dir: str,
    seed: int = 0,
    mode: str = "truncate",
    target_height: int = 24,
    snapshot_interval: int = 8,
) -> KillMidWriteResult:
    """Kill a store-backed node mid-append and verify durable recovery.

    One miner drives a two-node network (so the log is pure connects —
    no reorgs) while the victim persists every block to ``store_dir``.
    At ``target_height`` the victim crashes and the block log's tail is
    damaged at a seeded offset (:func:`inject_torn_write`).  On restart
    the victim must recover to the last *committed* block — verified
    byte-for-byte against an independent full-validation replay of the
    same prefix — and then rejoin the network fetching only the torn-off
    suffix from its peer.  Deterministic per (seed, mode).
    """
    sim = Simulation(seed=seed)
    params = ChainParams(
        max_target=2**252, retarget_window=2**31, require_pow=False
    )
    victim = Node(
        "victim",
        sim,
        params,
        store_dir=store_dir,
        snapshot_interval=snapshot_interval,
    )
    peer = Node("peer", sim, params)
    victim.connect(peer)
    victim.auto_sync = True
    peer.auto_sync = True

    total_rate = block_work(target_to_bits(2**252)) / 600.0
    miner = PoissonMiner(peer, total_rate, miner_id=1)
    miner.start()
    sim.run_while(
        lambda: victim.chain.height < target_height, limit=1e9
    )

    pre_height = victim.chain.height
    committed_blocks = victim.chain.export_active()
    victim.crash()  # closes the store's file handles
    inject_torn_write(store_dir, sim.rng, mode=mode, node=victim.name)
    victim.restart(persist_chain=True, resync=True)

    recovered_height = victim.chain.height
    recovered_tip = victim.chain.tip.block.hash
    # Independent oracle: full-validation replay of the committed prefix.
    oracle = Blockchain(params)
    for block in committed_blocks[:recovered_height]:
        oracle.add_block(block)
    tip_match = oracle.tip.block.hash == recovered_tip
    utxo_match = (
        oracle.utxos.serialized_size()
        == victim.chain.utxos.serialized_size()
        and oracle.utxos.total_value() == victim.chain.utxos.total_value()
    )

    # Rejoin: the restart kicked a catch-up sync; only the torn-off
    # suffix (plus whatever the miner found meanwhile) may be fetched.
    sim.run_while(
        lambda: not converged([victim, peer]), limit=sim.now + 48 * 3600.0
    )
    return KillMidWriteResult(
        seed=seed,
        mode=mode,
        pre_crash_height=pre_height,
        recovered_height=recovered_height,
        tip_match=tip_match,
        utxo_match=utxo_match,
        refetched_blocks=pre_height - recovered_height,
        converged=converged([victim, peer]),
        final_height=victim.chain.height,
    )


def run_chaos(profile: ChaosProfile, seed: int = 0) -> ChaosResult:
    """Execute one seeded chaos scenario and report convergence.

    Honest miners split the network hashrate; the configured faults fire
    on their schedule; after ``profile.duration`` the run continues until
    every honest node agrees on one tip (or the convergence budget runs
    out).  Deterministic: the same (profile, seed) always yields the
    same result.
    """
    sim = Simulation(seed=seed)
    nodes = build_network(sim, profile.node_count, latency=profile.latency)
    for node in nodes:
        node.auto_sync = True  # orphans under faults re-request their past
        node.compact_relay = profile.compact_relay
    honest = list(nodes)

    byz: ByzantinePeer | None = None
    if profile.byzantine:
        byz_node = nodes[-1]
        honest = nodes[:-1]
        byz = ByzantinePeer(
            byz_node,
            behaviors=profile.byzantine,
            interval=profile.byzantine_interval,
        )
        byz.start()

    total_rate = block_work(target_to_bits(2**252)) / profile.interval
    miner_count = min(profile.miner_count, len(honest))
    shares = miner_count + (1 if byz is not None and profile.byzantine_mines else 0)
    miners = [
        PoissonMiner(honest[i], total_rate / shares, miner_id=i)
        for i in range(miner_count)
    ]
    if byz is not None and profile.byzantine_mines:
        # The adversary mines too (honestly publishing), funding the
        # mature outputs its double-spends need.
        miners.append(
            PoissonMiner(
                byz.node,
                total_rate / shares,
                miner_id=1000,
                key_hash=byz.wallet.key_hash,
            )
        )
    for miner in miners:
        miner.start()

    if profile.link is not None:
        install_link_policy(nodes, profile.link)

    if profile.partition_at is not None:
        if profile.heal_at is None:
            raise ValueError("a partition needs a heal time")
        half = len(nodes) // 2
        partition = Partition(sim, nodes[:half], nodes[half:])
        partition.schedule(profile.partition_at, profile.heal_at)

    if profile.crash_at is not None:
        if profile.restart_at is None or profile.restart_at <= profile.crash_at:
            raise ValueError("restart must come after the crash")
        victim = honest[1 % len(honest)]
        sim.schedule(profile.crash_at, victim.crash)
        sim.schedule(
            profile.restart_at,
            lambda: victim.restart(persist_chain=profile.crash_persist),
        )

    def monitor_boundary() -> None:
        """Force every per-node invariant check on the live honest nodes
        (scenario boundaries bypass the monitors' sampling)."""
        if not obs.ENABLED:
            return
        from repro.obs.monitor import monitors

        registry = monitors()
        if not registry.enabled:
            return
        for node in honest:
            if node.alive:
                registry.check_node(node, force=True)

    sim.run_until(profile.duration)
    monitor_boundary()
    stop_reason = sim.run_while(
        lambda: not converged(honest),
        limit=profile.duration + profile.convergence_budget,
    )
    monitor_boundary()
    monitor_checks = monitor_violations = 0
    if obs.ENABLED:
        from repro.obs.monitor import monitors

        monitor_checks = monitors().checks_run
        monitor_violations = len(monitors().violations)
    is_converged = converged(honest)
    live = [n for n in honest if n.alive]
    tip = live[0].chain.tip
    return ChaosResult(
        profile=profile.name,
        seed=seed,
        converged=is_converged,
        convergence_time=sim.now if is_converged else None,
        height=tip.height,
        tip=tip.block.hash,
        blocks_found=sum(m.blocks_found for m in miners),
        events_processed=sim.events_processed,
        utxo_consistent=utxo_sets_match(honest) if is_converged else False,
        byzantine_banned_by=byz.banned_by(honest) if byz is not None else [],
        stop_reason=stop_reason,
        monitor_checks=monitor_checks,
        monitor_violations=monitor_violations,
    )


# ----------------------------------------------------------------------
# Verification-service faults (repro.service)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceChaosProfile:
    """A seeded fault schedule for the verification service.

    The ``*_every`` fields fire their injection immediately before every
    Nth request (0 disables).  ``invalid_every`` swaps in a bundle whose
    claimed type is wrong — a request whose *correct* verdict is
    ``invalid`` — so the no-wrong-verdict invariant is tested in both
    directions, not just "never reject a good claim".
    """

    name: str
    depth: int = 6  # upstream-set depth of the claim chain
    requests: int = 30  # sequential requests driven through the client
    workers: int = 2
    max_inflight: int = 3
    kill_every: int = 0  # crash a worker (breaks the pool; respawn path)
    slow_every: int = 0  # straggler pill occupying one worker
    slow_delay: float = 0.2
    poison_every: int = 0  # corrupt a memo entry (digest check must catch)
    invalid_every: int = 0  # requests whose correct verdict is ``invalid``
    overload_burst: int = 0  # concurrent burst fired once, mid-run
    request_timeout: float | None = None  # per-attempt client deadline
    max_attempts: int = 4  # client retry budget


@dataclass
class ServiceChaosResult:
    """Outcome of one seeded service-chaos run."""

    profile: str
    seed: int
    statuses: dict = field(default_factory=dict)  # status -> count
    wrong_verdicts: int = 0  # verdicts disagreeing with the oracle
    answered: int = 0  # requests that got a real verdict (ok/invalid)
    poison_rejected: int = 0  # poisoned memo entries caught by digest check
    respawns: int = 0  # pool rebuilds after worker deaths
    breaker_trips: int = 0
    degraded_served: int = 0  # verdicts served below the pooled tier
    shed: int = 0  # admissions refused with ``overloaded``
    retries: int = 0  # client-side retry attempts

    @property
    def ok(self) -> bool:
        """The invariant: every verdict matched the trusted replay, and
        chaos didn't starve the run of answers entirely."""
        return self.wrong_verdicts == 0 and self.answered > 0


SERVICE_PROFILES: dict[str, ServiceChaosProfile] = {
    # No faults: a baseline every verdict of which must be ``ok``/
    # ``invalid`` exactly as the oracle says.
    "service-calm": ServiceChaosProfile(
        name="service-calm", requests=12, invalid_every=4
    ),
    # The acceptance scenario: worker kills, stragglers, memo poisoning,
    # wrong-claim requests, and one concurrent overload burst.
    "service-inferno": ServiceChaosProfile(
        name="service-inferno",
        requests=30,
        kill_every=7,
        slow_every=5,
        poison_every=4,
        invalid_every=3,
        overload_burst=8,
        max_attempts=3,
    ),
}


def _service_world(depth: int):
    """A regtest chain carrying one claim of the given upstream depth.

    Returns ``(net, valid_bundle, invalid_bundle)`` where the invalid
    bundle claims the wrong type for the same txout.
    """
    from repro.bitcoin.regtest import RegtestNetwork
    from repro.core.builder import simple_transfer
    from repro.core.transaction import TypecoinOutput
    from repro.core.validate import Ledger
    from repro.core.wallet import TypecoinClient
    from repro.logic.propositions import One, Tensor

    net = RegtestNetwork()
    client = TypecoinClient(net, b"service-chaos", Ledger())
    net.fund_wallet(client.wallet, blocks=2)

    txn = simple_transfer([], [TypecoinOutput(One(), 600, client.pubkey)])
    carrier = client.submit(txn)
    net.confirm(1)
    client.sync()
    outpoint = OutPoint(carrier.txid, 0)
    for _ in range(depth - 1):
        txn = simple_transfer(
            [client.input_for(outpoint)],
            [TypecoinOutput(One(), 600, client.pubkey)],
        )
        carrier = client.submit(txn)
        net.confirm(1)
        client.sync()
        outpoint = OutPoint(carrier.txid, 0)
    valid = client.claim_bundle(outpoint, One())
    invalid = client.claim_bundle(outpoint, Tensor(One(), One()))
    return net, valid, invalid


def run_service_chaos(
    profile: ServiceChaosProfile, seed: int = 0
) -> ServiceChaosResult:
    """Drive the verification service through a seeded fault schedule.

    Every request's expected verdict comes from a trusted oracle — a
    plain single-process :func:`repro.core.verifier.verify_claim` replay
    run before any fault fires — and the result counts every service
    verdict that disagrees.  Infrastructure statuses (``timeout`` /
    ``overloaded`` / ``error`` / ``draining``) are legitimate non-answers
    and never count as wrong: the service may fail to answer under
    chaos, but it may never answer incorrectly.
    """
    import threading

    from repro.backoff import derive_rng
    from repro.core.verifier import VerificationError, verify_claim
    from repro.service import ServiceClient, VerificationService

    net, valid_bundle, invalid_bundle = _service_world(profile.depth)

    # The trusted replay: single process, no caches, no pool.
    def oracle(bundle) -> str:
        try:
            verify_claim(net.chain, bundle)
            return "ok"
        except VerificationError:
            return "invalid"

    expected = {"valid": oracle(valid_bundle), "invalid": oracle(invalid_bundle)}
    assert expected == {"valid": "ok", "invalid": "invalid"}

    rng = derive_rng("service-chaos", profile.name, seed)
    service = VerificationService(
        net.chain,
        workers=profile.workers,
        max_inflight=profile.max_inflight,
    )
    client = ServiceClient(
        service,
        max_attempts=profile.max_attempts,
        request_timeout=profile.request_timeout,
        seed=seed,
        sleep=lambda _delay: None,  # schedule computed, not slept
    )
    result = ServiceChaosResult(profile=profile.name, seed=seed)
    statuses: dict[str, int] = {}
    chain_txids = list(valid_bundle.transactions)

    def fires(every: int, i: int) -> bool:
        return every > 0 and (i + 1) % every == 0

    def score(verdict, want: str) -> None:
        statuses[verdict.status] = statuses.get(verdict.status, 0) + 1
        if verdict.degraded and verdict.is_verdict:
            result.degraded_served += 1
        if verdict.is_verdict:
            result.answered += 1
            if verdict.status != want:
                result.wrong_verdicts += 1

    burst_at = profile.requests // 2 if profile.overload_burst else -1
    for i in range(profile.requests):
        if fires(profile.kill_every, i) and service.pool is not None:
            service.pool.kill_worker()
        if fires(profile.slow_every, i) and service.pool is not None:
            service.pool.slow_worker(profile.slow_delay)
        if fires(profile.poison_every, i):
            service.memo.poison(rng.choice(chain_txids), b"\x00" * 32)
        if i == burst_at:
            # Concurrent burst straight at the service (no retry layer):
            # above ``max_inflight`` of these must shed as ``overloaded``,
            # and the ones that do get through must still be right.
            verdicts = [None] * profile.overload_burst
            def fire(slot: int) -> None:
                verdicts[slot] = service.verify(valid_bundle)
            threads = [
                threading.Thread(target=fire, args=(slot,))
                for slot in range(profile.overload_burst)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for verdict in verdicts:
                score(verdict, expected["valid"])
        if fires(profile.invalid_every, i):
            score(client.verify(invalid_bundle), expected["invalid"])
        else:
            score(client.verify(valid_bundle), expected["valid"])

    service.close(timeout=30.0)
    result.statuses = statuses
    result.poison_rejected = service.memo.poison_rejected
    result.respawns = service.pool.respawns if service.pool is not None else 0
    result.breaker_trips = service.breaker.trips
    result.shed = service.shed
    result.retries = client.retries
    return result
