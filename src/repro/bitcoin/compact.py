"""BIP 152-style compact block relay primitives.

Flood relay sends every transaction in a block to every peer a second
time, even though gossip already delivered almost all of them to every
mempool.  Compact relay exploits that: a block announcement carries the
80-byte header, a salt, and one 6-byte *short id* per transaction; the
receiver reconstructs the block from its own mempool and only round-trips
(``getblocktxn``/``blocktxn``) for the few transactions it is missing.
Relay bytes become sublinear in block size — the property the swarm-scale
item in ROADMAP.md needs.

The short id is the low 48 bits of SipHash-2-4 over the txid, keyed from
SHA-256 of the header plus a per-sender salt ("nonce").  Salting means a
collision an attacker grinds against one peer's key is useless against
another's; 48 bits keeps the accidental-collision rate negligible at
mempool scale (~1 in 2^48 per pair).  Collisions are still *possible*, so
reconstruction treats an ambiguous or false match as a miss, and the
relay layer falls back to requesting the full block — per BIP 152, a
collision is never treated as peer misbehavior.

This module is pure data-plane: hashing, encoding sizes, reconstruction.
The scheduling half (round-trips, timeouts, fallback, penalties) lives in
:mod:`repro.bitcoin.network`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.bitcoin.block import Block, BlockHeader
from repro.bitcoin.transaction import Transaction, varint

__all__ = [
    "SHORT_ID_BYTES",
    "CompactBlock",
    "MalformedCompactError",
    "PrefilledTransaction",
    "ReconstructionResult",
    "blocktxn_size",
    "finalize",
    "getblocktxn_size",
    "reconstruct",
    "short_id_key",
    "short_txid",
    "siphash24",
]

SHORT_ID_BYTES = 6

_MASK64 = 0xFFFFFFFFFFFFFFFF


class MalformedCompactError(Exception):
    """A compact block that no honest sender could have produced
    (out-of-range or duplicate prefilled indexes)."""


def siphash24(key: bytes, data: bytes) -> int:
    """SipHash-2-4 of ``data`` under a 16-byte ``key`` (64-bit result).

    Pure-python transcription of the reference algorithm (Aumasson &
    Bernstein); the compression rounds are inlined because this runs once
    per mempool transaction per compact block received.
    """
    if len(key) != 16:
        raise ValueError("siphash key must be 16 bytes")
    k0 = int.from_bytes(key[:8], "little")
    k1 = int.from_bytes(key[8:], "little")
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573
    length = len(data)
    tail = length & 7
    # Final word: remaining bytes plus the length in the top byte.
    last = (length & 0xFF) << 56 | int.from_bytes(
        data[length - tail :] if tail else b"", "little"
    )
    words = [
        int.from_bytes(data[i : i + 8], "little")
        for i in range(0, length - tail, 8)
    ]
    words.append(last)
    for m in words:
        v3 ^= m
        for _ in range(2):  # SipRound x2 (compression)
            v0 = (v0 + v1) & _MASK64
            v1 = ((v1 << 13) | (v1 >> 51)) & _MASK64
            v1 ^= v0
            v0 = ((v0 << 32) | (v0 >> 32)) & _MASK64
            v2 = (v2 + v3) & _MASK64
            v3 = ((v3 << 16) | (v3 >> 48)) & _MASK64
            v3 ^= v2
            v0 = (v0 + v3) & _MASK64
            v3 = ((v3 << 21) | (v3 >> 43)) & _MASK64
            v3 ^= v0
            v2 = (v2 + v1) & _MASK64
            v1 = ((v1 << 17) | (v1 >> 47)) & _MASK64
            v1 ^= v2
            v2 = ((v2 << 32) | (v2 >> 32)) & _MASK64
        v0 ^= m
    v2 ^= 0xFF
    for _ in range(4):  # SipRound x4 (finalization)
        v0 = (v0 + v1) & _MASK64
        v1 = ((v1 << 13) | (v1 >> 51)) & _MASK64
        v1 ^= v0
        v0 = ((v0 << 32) | (v0 >> 32)) & _MASK64
        v2 = (v2 + v3) & _MASK64
        v3 = ((v3 << 16) | (v3 >> 48)) & _MASK64
        v3 ^= v2
        v0 = (v0 + v3) & _MASK64
        v3 = ((v3 << 21) | (v3 >> 43)) & _MASK64
        v3 ^= v0
        v2 = (v2 + v1) & _MASK64
        v1 = ((v1 << 17) | (v1 >> 47)) & _MASK64
        v1 ^= v2
        v2 = ((v2 << 32) | (v2 >> 32)) & _MASK64
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK64


def short_id_key(header: BlockHeader, nonce: int) -> bytes:
    """The per-announcement SipHash key: SHA-256(header || nonce)[:16]."""
    digest = hashlib.sha256(
        header.serialize() + nonce.to_bytes(8, "little")
    ).digest()
    return digest[:16]


def short_txid(key: bytes, txid: bytes) -> bytes:
    """The 6-byte (48-bit) salted short id of one transaction."""
    return (siphash24(key, txid) & 0xFFFFFFFFFFFF).to_bytes(
        SHORT_ID_BYTES, "little"
    )


@dataclass(frozen=True)
class PrefilledTransaction:
    """A transaction shipped in full inside the announcement.

    The coinbase is always prefilled — it is freshly minted by the block's
    miner, so no mempool on earth holds it.  ``index`` is the absolute
    position in the block (BIP 152 differentially encodes it on the wire;
    we keep it absolute and account for the encoded size separately).
    """

    index: int
    tx: Transaction


@dataclass(frozen=True)
class CompactBlock:
    """A block announcement: header + salt + short ids + prefilled txs."""

    header: BlockHeader
    nonce: int
    short_ids: tuple[bytes, ...]
    prefilled: tuple[PrefilledTransaction, ...]

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def tx_count(self) -> int:
        return len(self.short_ids) + len(self.prefilled)

    @staticmethod
    def from_block(
        block: Block, salt: bytes = b"", nonce: int | None = None
    ) -> "CompactBlock":
        """Announce ``block``, prefilled with its coinbase.

        ``nonce`` defaults to a deterministic digest of the block hash and
        the sender ``salt`` — per-sender keys without touching any seeded
        simulation RNG stream.
        """
        if nonce is None:
            nonce = int.from_bytes(
                hashlib.sha256(b"compact-nonce" + block.hash + salt).digest()[
                    :8
                ],
                "little",
            )
        key = short_id_key(block.header, nonce)
        return CompactBlock(
            header=block.header,
            nonce=nonce,
            short_ids=tuple(
                short_txid(key, tx.txid) for tx in block.txs[1:]
            ),
            prefilled=(PrefilledTransaction(0, block.txs[0]),),
        )

    def serialized_size(self) -> int:
        """Wire bytes of this announcement (header, nonce, varint-counted
        short ids, varint-indexed prefilled transactions)."""
        size = 80 + 8
        size += len(varint(len(self.short_ids)))
        size += SHORT_ID_BYTES * len(self.short_ids)
        size += len(varint(len(self.prefilled)))
        for pf in self.prefilled:
            size += len(varint(pf.index)) + len(pf.tx.serialize())
        return size


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of a mempool-based reconstruction attempt.

    ``txs`` has one slot per block transaction (None where unresolved);
    ``missing`` lists the unresolved absolute indexes to put in a
    ``getblocktxn``; ``collisions`` counts short ids that matched more
    than one distinct mempool transaction (each treated as a miss).
    """

    txs: tuple[Transaction | None, ...]
    missing: tuple[int, ...]
    collisions: int

    @property
    def complete(self) -> bool:
        return not self.missing


def reconstruct(compact: CompactBlock, mempool) -> ReconstructionResult:
    """Fill the block's transaction list from ``mempool`` by short id.

    A short id matching two distinct mempool transactions is ambiguous and
    counted as a miss (the round-trip resolves it); a short id matching
    nothing is a plain miss.  Raises :class:`MalformedCompactError` for
    announcements no honest peer could send.
    """
    total = len(compact.short_ids) + len(compact.prefilled)
    txs: list[Transaction | None] = [None] * total
    prefilled_slots = set()
    for pf in compact.prefilled:
        if not 0 <= pf.index < total:
            raise MalformedCompactError(
                f"prefilled index {pf.index} out of range 0..{total - 1}"
            )
        if pf.index in prefilled_slots:
            raise MalformedCompactError(
                f"duplicate prefilled index {pf.index}"
            )
        prefilled_slots.add(pf.index)
        txs[pf.index] = pf.tx
    key = short_id_key(compact.header, compact.nonce)
    # Short id -> mempool tx; ambiguous ids collapse to None.
    by_sid: dict[bytes, Transaction | None] = {}
    collisions = 0
    for entry in mempool.transactions():
        sid = short_txid(key, entry.tx.txid)
        held = by_sid.get(sid)
        if sid in by_sid:
            if held is not None and held.txid != entry.tx.txid:
                by_sid[sid] = None
                collisions += 1
        else:
            by_sid[sid] = entry.tx
    missing: list[int] = []
    sid_iter = iter(compact.short_ids)
    for slot in range(total):
        if slot in prefilled_slots:
            continue
        sid = next(sid_iter)
        tx = by_sid.get(sid)
        if tx is None:
            missing.append(slot)
        else:
            txs[slot] = tx
    return ReconstructionResult(
        txs=tuple(txs), missing=tuple(missing), collisions=collisions
    )


def finalize(
    compact: CompactBlock, txs: tuple[Transaction | None, ...]
) -> Block | None:
    """Assemble and merkle-check the reconstructed block.

    None means the transaction list does not hash to the announced merkle
    root — a short-id *false match* filled some slot with the wrong
    mempool transaction.  That is the innocent collision case: the caller
    must fall back to fetching the full block, not penalize anyone.
    """
    if any(tx is None for tx in txs):
        return None
    block = Block(compact.header, list(txs))
    if block.compute_merkle_root() != compact.header.merkle_root:
        return None
    return block


# -- wire-size accounting for the round-trip messages -------------------
#
# The simulator never serializes these messages (delivery is a scheduled
# closure), but relay-byte accounting needs honest sizes: a compact
# scheme that hid its round-trip cost would game the benchmark.

#: ``getdata``-style full-block request: 32-byte hash + 4-byte type tag.
GETBLOCK_SIZE = 36


def getblocktxn_size(index_count: int) -> int:
    """Request bytes: block hash + varint count + ~3 bytes per differential
    varint index (BIP 152 encodes indexes as deltas; 3 is a generous
    per-entry bound for blocks under ~65k transactions)."""
    return 32 + len(varint(index_count)) + 3 * index_count


def blocktxn_size(txs) -> int:
    """Reply bytes: block hash + varint count + the transactions."""
    total = 32 + len(varint(len(txs)))
    for tx in txs:
        total += len(tx.serialize())
    return total
