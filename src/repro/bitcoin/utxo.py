"""The unspent-txout table (paper §3.3).

"Any Bitcoin node that verifies transactions' validity must be able to tell
whether a particular txout has been spent already, and this requires
maintaining a table of all unspent txouts."  The table's size — and the
permanent deadweight caused by unspendable metadata outputs — is the reason
Typecoin embeds metadata in spendable 1-of-2 multisig outputs.  Experiment
E4 measures exactly this, so the set tracks enough metrics to report it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.bitcoin.standard import ScriptType, classify
from repro.bitcoin.transaction import OutPoint, Transaction, TxOut

COINBASE_MATURITY = 100


@dataclass(frozen=True)
class UTXOEntry:
    """A single unspent output plus the context needed to validate spends."""

    output: TxOut
    height: int
    is_coinbase: bool

    def serialized_size(self) -> int:
        """Approximate in-table footprint: outpoint + entry, in bytes.

        Memoized (via ``__dict__``, bypassing the frozen guard) because the
        set maintains its total size incrementally: every add/remove asks
        for this, and serializing the script each time would move the cost
        the incremental total saved right back into the hot path.
        """
        size = self.__dict__.get("_size")
        if size is None:
            size = 36 + 8 + 4 + 1 + len(self.output.script_pubkey.serialize())
            self.__dict__["_size"] = size
        return size


@dataclass
class SpentInfo:
    """Undo record: what an input removed (so reorgs can restore it)."""

    outpoint: OutPoint
    entry: UTXOEntry


@dataclass
class BlockUndo:
    """Everything needed to disconnect one block from the UTXO set."""

    spent: list[SpentInfo] = field(default_factory=list)
    created: list[OutPoint] = field(default_factory=list)


class UTXOSet:
    """The set of unspent transaction outputs, with apply/undo semantics."""

    def __init__(self) -> None:
        self._entries: dict[OutPoint, UTXOEntry] = {}
        # Running total for serialized_size(): maintained on every
        # mutation so the monitors/benchmarks that sample it per block
        # pay O(1), not a full-table walk.
        self._size_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._entries

    def get(self, outpoint: OutPoint) -> UTXOEntry | None:
        return self._entries.get(outpoint)

    def items(self):
        return self._entries.items()

    def add(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        if outpoint in self._entries:
            raise ValueError(f"duplicate UTXO {outpoint}")
        self._entries[outpoint] = entry
        self._size_bytes += entry.serialized_size()

    def remove(self, outpoint: OutPoint) -> UTXOEntry:
        try:
            entry = self._entries.pop(outpoint)
        except KeyError:
            raise KeyError(f"spending unknown or spent txout {outpoint}") from None
        self._size_bytes -= entry.serialized_size()
        return entry

    def apply_transaction(
        self, tx: Transaction, height: int, undo: BlockUndo | None = None
    ) -> None:
        """Spend a transaction's inputs and create its outputs."""
        if not tx.is_coinbase:
            for txin in tx.vin:
                entry = self.remove(txin.prevout)
                if undo is not None:
                    undo.spent.append(SpentInfo(txin.prevout, entry))
        for index, output in enumerate(tx.vout):
            # Provably unspendable outputs never enter the table (this is the
            # one concession real nodes make to keep the table lean).
            if classify(output.script_pubkey).type is ScriptType.OP_RETURN:
                if obs.ENABLED:
                    obs.inc("utxo.gc_swept_total")
                continue
            outpoint = tx.outpoint(index)
            self.add(outpoint, UTXOEntry(output, height, tx.is_coinbase))
            if undo is not None:
                undo.created.append(outpoint)

    def apply_block_txs(self, txs: list[Transaction], height: int) -> BlockUndo:
        """Apply every transaction of a block, returning the undo record."""
        if obs.ENABLED:
            # One span per block, not per transaction: apply is the hot path.
            with obs.trace_span(
                "utxo.apply_block", metric="utxo.apply_seconds",
                height=height, txs=len(txs),
            ):
                return self._apply_block_txs_inner(txs, height)
        return self._apply_block_txs_inner(txs, height)

    def _apply_block_txs_inner(
        self, txs: list[Transaction], height: int
    ) -> BlockUndo:
        undo = BlockUndo()
        for tx in txs:
            self.apply_transaction(tx, height, undo)
        return undo

    def undo_block(self, undo: BlockUndo) -> None:
        """Disconnect a block: delete created outputs, restore spent ones."""
        if obs.ENABLED:
            with obs.trace_span(
                "utxo.undo_block", metric="utxo.undo_seconds",
                spent=len(undo.spent), created=len(undo.created),
            ):
                self._undo_block_inner(undo)
            return
        self._undo_block_inner(undo)

    def _undo_block_inner(self, undo: BlockUndo) -> None:
        for outpoint in reversed(undo.created):
            # A created output absent from the table means the undo data
            # does not describe this state (corrupt record, wrong block):
            # disconnecting anyway would silently corrupt the set.
            if not self._delete_created(outpoint):
                if obs.ENABLED:
                    obs.inc("utxo.undo_missing_total")
                raise KeyError(
                    f"undo expected created txout {outpoint} in the set"
                )
        for spent in reversed(undo.spent):
            self._restore_spent(spent.outpoint, spent.entry)

    # The two undo primitives are the seam the write-back cache
    # (:class:`repro.bitcoin.utxo_cache.UTXOCache`) overrides, so
    # apply/undo logic lives here exactly once.

    def _delete_created(self, outpoint: OutPoint) -> bool:
        """Delete a block-created output during undo; False if absent."""
        entry = self._entries.pop(outpoint, None)
        if entry is None:
            return False
        self._size_bytes -= entry.serialized_size()
        return True

    def _restore_spent(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        """Re-insert a spent output during undo (key known absent)."""
        self._entries[outpoint] = entry
        self._size_bytes += entry.serialized_size()

    def total_value(self) -> int:
        return sum(e.output.value for e in self._entries.values())

    def serialized_size(self) -> int:
        """Total table footprint in bytes (experiment E4's metric), O(1)."""
        return self._size_bytes

    def count_by_type(self) -> dict[ScriptType, int]:
        """How many table entries each script schema accounts for."""
        counts: dict[ScriptType, int] = {}
        for entry in self._entries.values():
            script_type = classify(entry.output.script_pubkey).type
            counts[script_type] = counts.get(script_type, 0) + 1
        return counts

    def snapshot(self) -> dict[OutPoint, UTXOEntry]:
        """A shallow copy of the table (entries are immutable)."""
        return dict(self._entries)
