"""Mining: block assembly and nonce grinding (paper §1, items 3–4).

"Parties are incentivized to create new blocks ... by the privilege to
generate new bitcoins and collect transaction fees."  The miner assembles a
template from the mempool (fee-rate order), adds a coinbase claiming subsidy
plus fees, and grinds the nonce until the header hash meets the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.bitcoin.block import Block, MAX_BLOCK_SIZE, build_block
from repro.bitcoin.chain import Blockchain, block_subsidy
from repro.bitcoin.mempool import Mempool
from repro.bitcoin.script import Op, Script
from repro.bitcoin.standard import p2pkh_script
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut

__all__ = ["Miner", "MiningError", "block_subsidy"]


class MiningError(Exception):
    """Raised when a block cannot be assembled or mined."""


@dataclass
class Miner:
    """Assembles and mines blocks on top of a chain."""

    chain: Blockchain
    coinbase_key_hash: bytes
    max_nonce: int = 2**32

    def make_coinbase(self, height: int, fees: int, extra_nonce: int = 0) -> Transaction:
        """The subsidy-claiming transaction; extra_nonce uniquifies txids."""
        tag = Script([height.to_bytes(4, "little"), extra_nonce.to_bytes(4, "little")])
        return Transaction(
            vin=[TxIn(OutPoint.null(), tag)],
            vout=[TxOut(block_subsidy(height) + fees, p2pkh_script(self.coinbase_key_hash))],
        )

    def assemble(
        self,
        mempool: Mempool | None = None,
        timestamp: int | None = None,
        extra_nonce: int = 0,
    ) -> Block:
        """Build an unmined block template on the current tip."""
        if obs.ENABLED:
            with obs.trace_span(
                "miner.build_template", metric="miner.template_seconds"
            ) as span:
                block = self._assemble_inner(mempool, timestamp, extra_nonce)
                span.set_attr("height", self.chain.tip.height + 1)
                span.set_attr("txs", len(block.txs))
                # Correlate the template span with the block's causal
                # trace (relay.hop events carry the same hash prefix).
                span.set_attr("hash", block.hash.hex())
            obs.inc("miner.template_txs_total", len(block.txs))
            return block
        return self._assemble_inner(mempool, timestamp, extra_nonce)

    def _assemble_inner(
        self,
        mempool: Mempool | None,
        timestamp: int | None,
        extra_nonce: int,
    ) -> Block:
        tip = self.chain.tip
        height = tip.height + 1
        txs: list[Transaction] = []
        fees = 0
        size_budget = MAX_BLOCK_SIZE - 1_000
        if mempool is not None:
            for entry in mempool.transactions():
                if size_budget - entry.size < 0:
                    continue
                txs.append(entry.tx)
                fees += entry.fee
                size_budget -= entry.size
        coinbase = self.make_coinbase(height, fees, extra_nonce)
        if timestamp is None:
            timestamp = self.chain.median_time_past() + 1
        bits = self.chain.required_bits(tip.block.hash)
        return build_block(
            prev_hash=tip.block.hash,
            txs=[coinbase] + txs,
            timestamp=timestamp,
            bits=bits,
        )

    def grind(self, block: Block) -> Block:
        """Brute-force the nonce until the header meets its target.

        Paper fn. 3: "no strategy for hitting the target better than brute
        force is known."
        """
        header = block.header
        for nonce in range(self.max_nonce):
            candidate = header.with_nonce(nonce)
            if candidate.meets_target():
                # Count attempts once on success rather than per iteration,
                # keeping the grind loop itself observability-free.
                if obs.ENABLED:
                    obs.inc("miner.hash_attempts_total", nonce + 1)
                return Block(candidate, block.txs)
        if obs.ENABLED:
            obs.inc("miner.hash_attempts_total", self.max_nonce)
        raise MiningError("nonce space exhausted; lower the difficulty")

    def mine_block(
        self,
        mempool: Mempool | None = None,
        timestamp: int | None = None,
        extra_nonce: int = 0,
    ) -> Block:
        """Assemble, grind, and submit one block; returns the accepted block."""
        block = self.grind(self.assemble(mempool, timestamp, extra_nonce))
        self.chain.add_block(block)
        if mempool is not None:
            mempool.remove_confirmed(list(block.txs))
        return block
