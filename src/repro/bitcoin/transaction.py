"""Bitcoin transactions: inputs, outputs, serialization, txids (paper §2).

A transaction consumes specific prior transaction-outputs and creates new
ones.  The txid is the double-SHA-256 of the serialized transaction,
displayed byte-reversed as Bitcoin convention dictates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from functools import cached_property

from repro import obs
from repro.bitcoin.script import Script
from repro.crypto.hashing import sha256d

COIN = 100_000_000  # satoshis per bitcoin
MAX_MONEY = 21_000_000 * COIN
SEQUENCE_FINAL = 0xFFFFFFFF

# Precompiled wire-format structs: ``unpack_from`` reads fixed-width
# fields straight off a bytes or memoryview buffer without slicing.
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_OUTPOINT = struct.Struct("<32sI")


def varint(n: int) -> bytes:
    """Bitcoin's variable-length integer encoding."""
    if n < 0xFD:
        return bytes([n])
    if n <= 0xFFFF:
        return b"\xfd" + n.to_bytes(2, "little")
    if n <= 0xFFFFFFFF:
        return b"\xfe" + n.to_bytes(4, "little")
    return b"\xff" + n.to_bytes(8, "little")


def read_varint(data, offset: int) -> tuple[int, int]:
    """Read a varint at ``offset``; returns (value, new_offset).

    Accepts bytes or memoryview.  Raises :class:`ValueError` with offset
    context when the buffer ends mid-field (a truncated prefix used to
    surface as a bare IndexError or, worse, a silent short read).
    """
    try:
        prefix = data[offset]
    except IndexError:
        raise ValueError(f"truncated varint at offset {offset}") from None
    if prefix < 0xFD:
        return prefix, offset + 1
    width = 2 if prefix == 0xFD else 4 if prefix == 0xFE else 8
    end = offset + 1 + width
    if end > len(data):
        raise ValueError(f"truncated varint at offset {offset}")
    return int.from_bytes(data[offset + 1 : end], "little"), end


@dataclass(frozen=True, order=True)
class OutPoint:
    """A reference to the ``index``-th output of transaction ``txid``."""

    txid: bytes
    index: int

    NULL_TXID = b"\x00" * 32
    COINBASE_INDEX = 0xFFFFFFFF

    @property
    def is_null(self) -> bool:
        return self.txid == self.NULL_TXID and self.index == self.COINBASE_INDEX

    @staticmethod
    def null() -> "OutPoint":
        return OutPoint(OutPoint.NULL_TXID, OutPoint.COINBASE_INDEX)

    def serialize(self) -> bytes:
        return self.txid + self.index.to_bytes(4, "little")

    def __str__(self) -> str:
        return f"{self.txid[::-1].hex()}:{self.index}"


@dataclass(frozen=True)
class TxIn:
    """A transaction input: the outpoint it spends plus the unlocking script."""

    prevout: OutPoint
    script_sig: Script = field(default_factory=Script)
    sequence: int = SEQUENCE_FINAL

    def serialize(self) -> bytes:
        sig = self.script_sig.serialize()
        return (
            self.prevout.serialize()
            + varint(len(sig))
            + sig
            + self.sequence.to_bytes(4, "little")
        )


@dataclass(frozen=True)
class TxOut:
    """A transaction output: an amount in satoshis and a locking script."""

    value: int
    script_pubkey: Script

    def serialize(self) -> bytes:
        spk = self.script_pubkey.serialize()
        return self.value.to_bytes(8, "little", signed=True) + varint(len(spk)) + spk


@dataclass(frozen=True)
class Transaction:
    """An immutable Bitcoin transaction."""

    vin: tuple[TxIn, ...]
    vout: tuple[TxOut, ...]
    version: int = 1
    locktime: int = 0

    def __init__(
        self,
        vin,
        vout,
        version: int = 1,
        locktime: int = 0,
    ):
        object.__setattr__(self, "vin", tuple(vin))
        object.__setattr__(self, "vout", tuple(vout))
        object.__setattr__(self, "version", version)
        object.__setattr__(self, "locktime", locktime)

    def serialize(self) -> bytes:
        out = bytearray(self.version.to_bytes(4, "little"))
        out += varint(len(self.vin))
        for txin in self.vin:
            out += txin.serialize()
        out += varint(len(self.vout))
        for txout in self.vout:
            out += txout.serialize()
        out += self.locktime.to_bytes(4, "little")
        return bytes(out)

    @staticmethod
    def parse(data, strict: bool = True) -> "Transaction":
        """Parse one whole transaction.

        ``strict`` (the default) rejects trailing bytes: every caller in
        the pipeline hands over an exact buffer, so leftovers mean a
        framing bug upstream, not padding to ignore.
        """
        tx, offset = Transaction.parse_from(data, 0)
        if strict and offset != len(data):
            raise ValueError(
                f"trailing bytes after transaction: parsed {offset} of "
                f"{len(data)}"
            )
        return tx

    @staticmethod
    def parse_from(data, start: int) -> "tuple[Transaction, int]":
        """Parse one transaction at ``start``; returns (tx, next_offset)."""
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("parse")
        try:
            return Transaction._parse_from(data, start)
        finally:
            if prof is not None:
                prof.exit()

    @staticmethod
    def _parse_from(data, start: int) -> "tuple[Transaction, int]":
        # Zero-copy decoding: fixed-width fields are unpacked in place
        # (no per-field slice objects); the only bytes that are copied out
        # of the buffer are the ones that outlive it — 32-byte txids (the
        # struct "32s" copy) and script pushes.  Every read is
        # bounds-checked first: the old slicing parser yielded silent
        # short values (e.g. a 7-byte txid) on truncated input.
        buf = data if isinstance(data, memoryview) else memoryview(data)
        end = len(buf)

        def short(offset: int, what: str) -> ValueError:
            return ValueError(
                f"truncated transaction: {what} at offset {offset} "
                f"(buffer has {end} bytes)"
            )

        if start + 4 > end:
            raise short(start, "version")
        (version,) = _U32.unpack_from(buf, start)
        n_in, offset = read_varint(buf, start + 4)
        vin = []
        for _ in range(n_in):
            if offset + 36 > end:
                raise short(offset, "input outpoint")
            txid, index = _OUTPOINT.unpack_from(buf, offset)
            offset += 36
            script_len, offset = read_varint(buf, offset)
            if offset + script_len > end:
                raise short(offset, "input script")
            script = Script.parse(buf[offset : offset + script_len])
            offset += script_len
            if offset + 4 > end:
                raise short(offset, "input sequence")
            (sequence,) = _U32.unpack_from(buf, offset)
            offset += 4
            vin.append(TxIn(OutPoint(txid, index), script, sequence))
        n_out, offset = read_varint(buf, offset)
        vout = []
        for _ in range(n_out):
            if offset + 8 > end:
                raise short(offset, "output value")
            (value,) = _I64.unpack_from(buf, offset)
            offset += 8
            script_len, offset = read_varint(buf, offset)
            if offset + script_len > end:
                raise short(offset, "output script")
            script = Script.parse(buf[offset : offset + script_len])
            offset += script_len
            vout.append(TxOut(value, script))
        if offset + 4 > end:
            raise short(offset, "locktime")
        (locktime,) = _U32.unpack_from(buf, offset)
        tx = Transaction(vin, vout, version=version, locktime=locktime)
        return tx, offset + 4

    @cached_property
    def txid(self) -> bytes:
        """Internal byte order (as used in outpoints and merkle trees)."""
        return sha256d(self.serialize())

    @property
    def txid_hex(self) -> str:
        """Display byte order (reversed), as block explorers show it."""
        return self.txid[::-1].hex()

    @property
    def is_coinbase(self) -> bool:
        return len(self.vin) == 1 and self.vin[0].prevout.is_null

    def total_output_value(self) -> int:
        return sum(out.value for out in self.vout)

    def outpoint(self, index: int) -> OutPoint:
        """The outpoint referring to this transaction's ``index``-th output."""
        if not 0 <= index < len(self.vout):
            raise IndexError("output index out of range")
        return OutPoint(self.txid, index)

    def with_input_script(self, index: int, script: Script) -> "Transaction":
        """A copy with input ``index``'s scriptSig replaced (for signing)."""
        vin = list(self.vin)
        vin[index] = replace(vin[index], script_sig=script)
        return Transaction(vin, self.vout, version=self.version, locktime=self.locktime)
