"""Bitcoin transactions: inputs, outputs, serialization, txids (paper §2).

A transaction consumes specific prior transaction-outputs and creates new
ones.  The txid is the double-SHA-256 of the serialized transaction,
displayed byte-reversed as Bitcoin convention dictates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

from repro import obs
from repro.bitcoin.script import Script
from repro.crypto.hashing import sha256d

COIN = 100_000_000  # satoshis per bitcoin
MAX_MONEY = 21_000_000 * COIN
SEQUENCE_FINAL = 0xFFFFFFFF


def varint(n: int) -> bytes:
    """Bitcoin's variable-length integer encoding."""
    if n < 0xFD:
        return bytes([n])
    if n <= 0xFFFF:
        return b"\xfd" + n.to_bytes(2, "little")
    if n <= 0xFFFFFFFF:
        return b"\xfe" + n.to_bytes(4, "little")
    return b"\xff" + n.to_bytes(8, "little")


def read_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Read a varint at ``offset``; returns (value, new_offset)."""
    prefix = data[offset]
    if prefix < 0xFD:
        return prefix, offset + 1
    if prefix == 0xFD:
        return int.from_bytes(data[offset + 1 : offset + 3], "little"), offset + 3
    if prefix == 0xFE:
        return int.from_bytes(data[offset + 1 : offset + 5], "little"), offset + 5
    return int.from_bytes(data[offset + 1 : offset + 9], "little"), offset + 9


@dataclass(frozen=True, order=True)
class OutPoint:
    """A reference to the ``index``-th output of transaction ``txid``."""

    txid: bytes
    index: int

    NULL_TXID = b"\x00" * 32
    COINBASE_INDEX = 0xFFFFFFFF

    @property
    def is_null(self) -> bool:
        return self.txid == self.NULL_TXID and self.index == self.COINBASE_INDEX

    @staticmethod
    def null() -> "OutPoint":
        return OutPoint(OutPoint.NULL_TXID, OutPoint.COINBASE_INDEX)

    def serialize(self) -> bytes:
        return self.txid + self.index.to_bytes(4, "little")

    def __str__(self) -> str:
        return f"{self.txid[::-1].hex()}:{self.index}"


@dataclass(frozen=True)
class TxIn:
    """A transaction input: the outpoint it spends plus the unlocking script."""

    prevout: OutPoint
    script_sig: Script = field(default_factory=Script)
    sequence: int = SEQUENCE_FINAL

    def serialize(self) -> bytes:
        sig = self.script_sig.serialize()
        return (
            self.prevout.serialize()
            + varint(len(sig))
            + sig
            + self.sequence.to_bytes(4, "little")
        )


@dataclass(frozen=True)
class TxOut:
    """A transaction output: an amount in satoshis and a locking script."""

    value: int
    script_pubkey: Script

    def serialize(self) -> bytes:
        spk = self.script_pubkey.serialize()
        return self.value.to_bytes(8, "little", signed=True) + varint(len(spk)) + spk


@dataclass(frozen=True)
class Transaction:
    """An immutable Bitcoin transaction."""

    vin: tuple[TxIn, ...]
    vout: tuple[TxOut, ...]
    version: int = 1
    locktime: int = 0

    def __init__(
        self,
        vin,
        vout,
        version: int = 1,
        locktime: int = 0,
    ):
        object.__setattr__(self, "vin", tuple(vin))
        object.__setattr__(self, "vout", tuple(vout))
        object.__setattr__(self, "version", version)
        object.__setattr__(self, "locktime", locktime)

    def serialize(self) -> bytes:
        out = bytearray(self.version.to_bytes(4, "little"))
        out += varint(len(self.vin))
        for txin in self.vin:
            out += txin.serialize()
        out += varint(len(self.vout))
        for txout in self.vout:
            out += txout.serialize()
        out += self.locktime.to_bytes(4, "little")
        return bytes(out)

    @staticmethod
    def parse(data: bytes) -> "Transaction":
        tx, _ = Transaction.parse_from(data, 0)
        return tx

    @staticmethod
    def parse_from(data: bytes, start: int) -> "tuple[Transaction, int]":
        """Parse one transaction at ``start``; returns (tx, next_offset)."""
        prof = obs.PROFILER if obs.ENABLED else None
        if prof is not None:
            prof.enter("parse")
        try:
            return Transaction._parse_from(data, start)
        finally:
            if prof is not None:
                prof.exit()

    @staticmethod
    def _parse_from(data: bytes, start: int) -> "tuple[Transaction, int]":
        version = int.from_bytes(data[start : start + 4], "little")
        n_in, offset = read_varint(data, start + 4)
        vin = []
        for _ in range(n_in):
            txid = data[offset : offset + 32]
            index = int.from_bytes(data[offset + 32 : offset + 36], "little")
            offset += 36
            script_len, offset = read_varint(data, offset)
            script = Script.parse(data[offset : offset + script_len])
            offset += script_len
            sequence = int.from_bytes(data[offset : offset + 4], "little")
            offset += 4
            vin.append(TxIn(OutPoint(txid, index), script, sequence))
        n_out, offset = read_varint(data, offset)
        vout = []
        for _ in range(n_out):
            value = int.from_bytes(data[offset : offset + 8], "little", signed=True)
            offset += 8
            script_len, offset = read_varint(data, offset)
            script = Script.parse(data[offset : offset + script_len])
            offset += script_len
            vout.append(TxOut(value, script))
        locktime = int.from_bytes(data[offset : offset + 4], "little")
        tx = Transaction(vin, vout, version=version, locktime=locktime)
        return tx, offset + 4

    @cached_property
    def txid(self) -> bytes:
        """Internal byte order (as used in outpoints and merkle trees)."""
        return sha256d(self.serialize())

    @property
    def txid_hex(self) -> str:
        """Display byte order (reversed), as block explorers show it."""
        return self.txid[::-1].hex()

    @property
    def is_coinbase(self) -> bool:
        return len(self.vin) == 1 and self.vin[0].prevout.is_null

    def total_output_value(self) -> int:
        return sum(out.value for out in self.vout)

    def outpoint(self, index: int) -> OutPoint:
        """The outpoint referring to this transaction's ``index``-th output."""
        if not 0 <= index < len(self.vout):
            raise IndexError("output index out of range")
        return OutPoint(self.txid, index)

    def with_input_script(self, index: int, script: Script) -> "Transaction":
        """A copy with input ``index``'s scriptSig replaced (for signing)."""
        vin = list(self.vin)
        vin[index] = replace(vin[index], script_sig=script)
        return Transaction(vin, self.vout, version=self.version, locktime=self.locktime)
