"""Wire format for full Typecoin transactions and claim bundles.

The §3 protocol has the prover *send* T_I and the upstream set 𝔗 to the
verifier, so transactions need a transport encoding, not just a hash
preimage.  :func:`encode_transaction` emits exactly the bytes that
:meth:`TypecoinTransaction.serialize` hashes; :func:`decode_transaction`
inverts it, and round-tripping preserves the transaction hash bit-for-bit
(the encoding is α-invariant).
"""

from __future__ import annotations

from repro.bitcoin.transaction import OutPoint
from repro.core.transaction import (
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
)
from repro.core.verifier import ClaimBundle
from repro.lf.basis import Basis, KindDecl, PropDecl, TypeDecl
from repro.logic.decoding import (
    Cursor,
    DecodingError,
    decode_family,
    decode_kind,
    decode_proof,
    decode_prop,
    decode_ref,
)
from repro.logic.encoding import _blob, _uint

_MAGIC = b"typecoin-txn:"
_BUNDLE_MAGIC = b"typecoin-bundle:"


def encode_transaction(txn: TypecoinTransaction) -> bytes:
    """The transport bytes — identical to what the transaction hash covers."""
    return txn.serialize()


def decode_transaction(data: bytes) -> TypecoinTransaction:
    """Parse transport bytes back into a transaction.

    The result is α-equivalent to (and hashes identically to) the original.
    """
    cursor = Cursor(data)
    txn = _read_transaction(cursor)
    if not cursor.exhausted:
        raise DecodingError("trailing bytes after transaction")
    return txn


def _read_transaction(cursor: Cursor) -> TypecoinTransaction:
    magic = cursor.data[cursor.pos : cursor.pos + len(_MAGIC)]
    if magic != _MAGIC:
        raise DecodingError("bad transaction magic")
    cursor.pos += len(_MAGIC)

    basis = Basis()
    for _ in range(cursor.uint()):
        ref = decode_ref(cursor)
        tag = cursor.byte()
        if tag == 0x01:
            basis.declare(ref, KindDecl(decode_kind(cursor)))
        elif tag == 0x02:
            basis.declare(ref, TypeDecl(decode_family(cursor)))
        elif tag == 0x03:
            basis.declare(ref, PropDecl(decode_prop(cursor)))
        else:
            raise DecodingError(f"unknown declaration tag 0x{tag:02x}")

    grant = decode_prop(cursor)

    inputs = []
    for _ in range(cursor.uint()):
        txid = cursor.blob()
        index = cursor.uint()
        prop = decode_prop(cursor)
        amount = cursor.uint()
        inputs.append(TypecoinInput(txid, index, prop, amount))

    outputs = []
    for _ in range(cursor.uint()):
        prop = decode_prop(cursor)
        amount = cursor.uint()
        recipient = cursor.blob()
        outputs.append(TypecoinOutput(prop, amount, recipient))

    proof = decode_proof(cursor)
    return TypecoinTransaction(basis, grant, inputs, outputs, proof)


def encode_bundle(bundle: ClaimBundle) -> bytes:
    """Serialize a full §3 claim bundle: the claimed txout, its type, and
    every upstream transaction."""
    parts = [_BUNDLE_MAGIC]
    parts.append(_blob(bundle.outpoint.txid))
    parts.append(_uint(bundle.outpoint.index))
    from repro.logic.encoding import encode_prop

    parts.append(_blob(encode_prop(bundle.prop)))
    parts.append(_uint(len(bundle.transactions)))
    for txid, txn in sorted(bundle.transactions.items()):
        parts.append(_blob(txid))
        parts.append(_blob(encode_transaction(txn)))
    return b"".join(parts)


def decode_bundle(data: bytes) -> ClaimBundle:
    """Parse a claim bundle received from a prover."""
    cursor = Cursor(data)
    magic = cursor.data[: len(_BUNDLE_MAGIC)]
    if magic != _BUNDLE_MAGIC:
        raise DecodingError("bad bundle magic")
    cursor.pos = len(_BUNDLE_MAGIC)
    txid = cursor.blob()
    index = cursor.uint()
    prop = decode_prop(Cursor(cursor.blob()))
    transactions = {}
    for _ in range(cursor.uint()):
        carrier_txid = cursor.blob()
        transactions[carrier_txid] = decode_transaction(cursor.blob())
    if not cursor.exhausted:
        raise DecodingError("trailing bytes after bundle")
    return ClaimBundle(
        outpoint=OutPoint(txid, index), prop=prop, transactions=transactions
    )
