"""Transaction and chain formation: 𝔗;Σ ⊢ T ok and 𝔗 : Σ (Appendix A).

The :class:`Ledger` is the Typecoin view of history 𝔗: every validated
transaction, the global basis accumulated from their local bases (with
``this`` resolved to carrier txids), and the typed outputs with their spend
status.  :func:`check_typecoin_transaction` implements the big
transaction-formation rule, including the top-level implicit conditional
discharge of §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.lf.basis import Basis, KindDecl, PropDecl, TypeDecl, builtin_basis
from repro.lf.typecheck import LFTypeError, check_kind, check_family_is_type
from repro.lf.typecheck import LFContext
from repro.logic.checker import (
    CheckerContext,
    ProofError,
    check_prop_formation,
    infer,
)
from repro.logic.conditions import CTrue, WorldView, evaluate
from repro.logic.freshness import FreshnessError, check_basis_fresh, check_prop_fresh
from repro.logic.propositions import (
    IfProp,
    Lolli,
    Proposition,
    normalize_prop,
    props_equal,
    substitute_this_prop,
)
from repro.core.transaction import TypecoinTransaction


class ValidationFailure(Exception):
    """A Typecoin transaction violates the formation judgement."""


@dataclass
class LedgerOutput:
    """A typed txout the ledger knows about."""

    prop: Proposition  # with this already resolved
    amount: int
    principal: bytes  # 20-byte key hash
    spent_by: bytes | None = None


@dataclass
class Ledger:
    """𝔗 plus its accumulated global basis Σ_global."""

    global_basis: Basis = field(default_factory=builtin_basis)
    transactions: dict[bytes, TypecoinTransaction] = field(default_factory=dict)
    outputs: dict[tuple[bytes, int], LedgerOutput] = field(default_factory=dict)

    def output(self, txid: bytes, index: int) -> LedgerOutput | None:
        return self.outputs.get((txid, index))

    def register(self, carrier_txid: bytes, txn: TypecoinTransaction) -> None:
        """Chain formation: 𝔗, txid:T : Σ_global, [txid/this]Σ.

        Call only after :func:`check_typecoin_transaction` succeeds.
        """
        if carrier_txid in self.transactions:
            raise ValidationFailure("transaction already registered")
        start = obs.clock() if obs.ENABLED else 0.0
        self.transactions[carrier_txid] = txn
        self.global_basis = self.global_basis.extended(
            txn.basis.resolved(carrier_txid)
        )
        for index, out in enumerate(txn.outputs):
            self.outputs[(carrier_txid, index)] = LedgerOutput(
                prop=txn.output_prop_resolved(index, carrier_txid),
                amount=out.amount,
                principal=out.principal,
            )
        for inp in txn.inputs:
            entry = self.outputs.get((inp.txid, inp.index))
            if entry is not None:
                entry.spent_by = carrier_txid
        if obs.ENABLED:
            obs.observe("ledger.apply_seconds", obs.clock() - start)

    def spent_oracle(self, txid: bytes, index: int) -> bool:
        entry = self.outputs.get((txid, index))
        return entry is not None and entry.spent_by is not None


def check_typecoin_transaction(
    ledger: Ledger,
    txn: TypecoinTransaction,
    world: WorldView,
) -> Proposition:
    """The 𝔗;Σ ⊢ T ok judgement; returns the discharged condition's body.

    Checks, in Appendix A's order: Σ_global ⊢ Σ ok and Σ fresh; C prop and
    C fresh; input/output propositions well-formed; input types agree with
    the outputs they spend (after [txid/this] resolution); the proof term
    has type (C ⊗ A ⊗ R) ⊸ if(φ, B); and φ holds in ``world``.  A proof of
    a bare (C ⊗ A ⊗ R) ⊸ B is accepted as φ = true.
    """
    check_start = obs.clock() if obs.ENABLED else 0.0

    # --- Σ_global ⊢ Σ ok and Σ fresh -----------------------------------
    working = _check_local_basis(ledger.global_basis, txn.basis)
    try:
        check_basis_fresh(txn.basis)
    except FreshnessError as exc:
        raise ValidationFailure(str(exc)) from exc

    lf_ctx = LFContext()

    # --- C prop, C fresh -------------------------------------------------
    try:
        check_prop_formation(working, lf_ctx, txn.grant)
    except ProofError as exc:
        raise ValidationFailure(f"ill-formed affine grant: {exc}") from exc
    try:
        check_prop_fresh(txn.grant)
    except FreshnessError as exc:
        raise ValidationFailure(str(exc)) from exc

    # --- inputs -----------------------------------------------------------
    seen: set[tuple[bytes, int]] = set()
    for inp in txn.inputs:
        key = (inp.txid, inp.index)
        if key in seen:
            raise ValidationFailure(f"duplicate input {inp.txid.hex()}.{inp.index}")
        seen.add(key)
        try:
            check_prop_formation(working, lf_ctx, inp.prop)
        except ProofError as exc:
            raise ValidationFailure(f"ill-formed input type: {exc}") from exc
        known = ledger.output(inp.txid, inp.index)
        if known is None:
            raise ValidationFailure(
                f"input {inp.txid[:8].hex()}….{inp.index} is not a known"
                " Typecoin output"
            )
        if not props_equal(inp.prop, known.prop):
            raise ValidationFailure(
                f"input type {normalize_prop(inp.prop)} does not match spent"
                f" output's type {normalize_prop(known.prop)}"
            )
        if inp.amount != known.amount:
            raise ValidationFailure(
                f"input amount {inp.amount} does not match spent output's"
                f" {known.amount}"
            )

    # --- outputs ---------------------------------------------------------
    for out in txn.outputs:
        try:
            check_prop_formation(working, lf_ctx, out.prop)
        except ProofError as exc:
            raise ValidationFailure(f"ill-formed output type: {exc}") from exc

    # --- the proof -------------------------------------------------------
    ctx = CheckerContext(
        basis=working,
        txn_payload=txn.signing_payload(),
    )
    try:
        if obs.ENABLED:
            with obs.trace_span("proof.check", metric="proof.check_seconds"):
                proved, _used = infer(ctx, txn.proof)
            obs.emit("proof.checked", outcome="ok")
        else:
            proved, _used = infer(ctx, txn.proof)
    except ProofError as exc:
        if obs.ENABLED:
            obs.emit("proof.checked", outcome="proof_error")
        raise ValidationFailure(f"proof does not check: {exc}") from exc

    proved = normalize_prop(proved)
    if not isinstance(proved, Lolli):
        raise ValidationFailure(f"proof proves {proved}, not an implication")
    expected_antecedent = txn.obligation_antecedent()
    if not props_equal(proved.antecedent, expected_antecedent):
        raise ValidationFailure(
            f"proof consumes {normalize_prop(proved.antecedent)}, transaction"
            f" provides {normalize_prop(expected_antecedent)}"
        )

    consequent = normalize_prop(proved.consequent)
    expected_outputs = txn.outputs_tensor()
    if isinstance(consequent, IfProp):
        condition = consequent.condition
        produced = consequent.body
    else:
        condition = CTrue()
        produced = consequent
    if not props_equal(produced, expected_outputs):
        raise ValidationFailure(
            f"proof produces {normalize_prop(produced)}, outputs require"
            f" {normalize_prop(expected_outputs)}"
        )

    # --- implicit top-level discharge: "the condition φ holds" ------------
    if not evaluate(condition, world):
        raise ValidationFailure(
            f"top-level condition {condition} does not hold in this world"
        )
    if obs.ENABLED:
        obs.observe("ledger.check_seconds", obs.clock() - check_start)
    return produced


def _check_local_basis(global_basis: Basis, local: Basis) -> Basis:
    """Σ_global ⊢ Σ ok: each declaration well-formed given what precedes it."""
    if not local.all_local():
        raise ValidationFailure("local basis declares non-this constants")
    working = global_basis
    lf_ctx = LFContext()
    staged = Basis()
    for ref, decl in local:
        scope = working.extended(staged)
        try:
            if isinstance(decl, KindDecl):
                check_kind(scope, lf_ctx, decl.kind)
            elif isinstance(decl, TypeDecl):
                check_family_is_type(scope, lf_ctx, decl.family)
            elif isinstance(decl, PropDecl):
                check_prop_formation(scope, lf_ctx, decl.prop)
            else:  # pragma: no cover - closed union
                raise ValidationFailure(f"unknown declaration {decl!r}")
        except (LFTypeError, ProofError) as exc:
            raise ValidationFailure(
                f"ill-formed declaration {ref}: {exc}"
            ) from exc
        staged.declare(ref, decl)
    return working.extended(staged)


def world_at(chain, height: int | None = None) -> WorldView:
    """The world view a transaction entering at ``height`` sees.

    Time is the block timestamp (§5: "Each block includes a timestamp that
    can be used to determine the transaction's time"); the spent oracle
    answers from the chain's spender index, restricted to spends at or
    before ``height``.
    """
    if height is None:
        height = chain.height
    timestamp = chain.block_at(height).header.timestamp

    def spent(txid: bytes, index: int) -> bool:
        from repro.bitcoin.transaction import OutPoint

        spender = chain.spender_of(OutPoint(txid, index))
        if spender is None:
            return False
        found = chain.get_transaction(spender)
        if found is None:  # pragma: no cover - index consistency
            return False
        _, spender_height = found
        return spender_height <= height

    return WorldView(time=timestamp, spent_oracle=spent)
