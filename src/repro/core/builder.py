"""Convenience builders for common transaction shapes.

Affine ``assert`` signatures cover the transaction they appear in (§4), so
a transaction whose proof *contains* asserts must be built in two phases:
fix (Σ, C, ι⃗, ω⃗), derive the signing payload, then construct the proof.
:func:`build_with_payload` packages that dance; the other helpers cover
recurring shapes (publishing a basis, simple transfers).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

from repro.core.proofs import obligation_lambda, tensor_intro_all
from repro.core.transaction import (
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
)
from repro.lf.basis import Basis
from repro.logic.proofterms import OneIntro, ProofTerm, PVar
from repro.logic.propositions import One, Proposition


def build_with_payload(
    basis: Basis,
    grant: Proposition,
    inputs: Sequence[TypecoinInput],
    outputs: Sequence[TypecoinOutput],
    proof_builder: Callable[[bytes], ProofTerm],
) -> TypecoinTransaction:
    """Two-phase construction: ``proof_builder`` receives the signing
    payload (for affine asserts) and returns the proof term."""
    draft = TypecoinTransaction(basis, grant, inputs, outputs, OneIntro())
    proof = proof_builder(draft.signing_payload())
    return replace(draft, proof=proof)


def basis_publication(
    basis: Basis,
    self_pubkey: bytes,
    grant: Proposition | None = None,
    grant_amount: int = 600,
) -> TypecoinTransaction:
    """A transaction that only publishes a basis (and optionally banks an
    affine grant in its first output).

    With no grant, the single output is trivial (type 1) — the basis still
    enters the global basis when the transaction confirms.
    """
    grant = grant if grant is not None else One()
    output = TypecoinOutput(grant, grant_amount, self_pubkey)
    proof = obligation_lambda(
        grant,
        [],
        [output.receipt()],
        lambda c, _ins, _rs: c,
    )
    return TypecoinTransaction(basis, grant, [], [output], proof)


def simple_transfer(
    inputs: Sequence[TypecoinInput],
    outputs: Sequence[TypecoinOutput],
    body: Callable[[list[PVar]], ProofTerm] | None = None,
    basis: Basis | None = None,
) -> TypecoinTransaction:
    """inputs ⟶ outputs with an optional transformation body.

    The default body forwards the inputs unchanged (a pure transfer, valid
    when the output propositions equal the input propositions in order).
    """
    outputs = list(outputs)
    proof = obligation_lambda(
        One(),
        [inp.prop for inp in inputs],
        [out.receipt() for out in outputs],
        lambda _c, ins, _rs: (
            body(ins) if body is not None else tensor_intro_all(list(ins))
        ),
    )
    return TypecoinTransaction(
        basis if basis is not None else Basis(), One(), inputs, outputs, proof
    )
