"""Typecoin: the paper's primary contribution, assembled.

A Typecoin transaction "(Σ, C, ι⃗, ω⃗, M)" (paper §4) deals in propositions
instead of numbers; it is overlaid on a Bitcoin carrier transaction whose
double-spend protection provides affine commitment (§3).  This package
contains the transaction structure and the Appendix A validation judgements,
the Bitcoin overlay (1-of-2 multisig metadata embedding), the upstream-set
verification protocol, the client, batch-mode servers, open transactions
with type-checking escrow, the newcoin currency of §6, and the
proof-carrying-authorization vocabulary of §1–2.
"""

from repro.core.transaction import (
    TxnError,
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
)
from repro.core.validate import Ledger, ValidationFailure, check_typecoin_transaction, world_at
from repro.core.overlay import (
    EmbeddingStrategy,
    OverlayError,
    build_carrier,
    carrier_embeds_hash,
    metadata_pubkey,
)
from repro.core.verifier import ClaimBundle, VerificationError, verify_claim
from repro.core.wallet import TypecoinClient
from repro.core.fallback import FallbackError, FallbackList
from repro.core.batch import BatchServer, BatchError, VirtualTransaction
from repro.core.escrow import EscrowAgent, EscrowError, OpenTransaction
from repro.core.builder import basis_publication, build_with_payload, simple_transfer
from repro.core.proofs import decompose_tensor, obligation_lambda, tensor_intro_all
from repro.core.wire import (
    decode_bundle,
    decode_transaction,
    encode_bundle,
    encode_transaction,
)
from repro.core.auditor import AuditReport, audit_chain
from repro.core import currency, pca

__all__ = [
    "TxnError",
    "TypecoinInput",
    "TypecoinOutput",
    "TypecoinTransaction",
    "Ledger",
    "ValidationFailure",
    "check_typecoin_transaction",
    "world_at",
    "EmbeddingStrategy",
    "OverlayError",
    "build_carrier",
    "carrier_embeds_hash",
    "metadata_pubkey",
    "ClaimBundle",
    "VerificationError",
    "verify_claim",
    "TypecoinClient",
    "FallbackError",
    "FallbackList",
    "BatchServer",
    "BatchError",
    "VirtualTransaction",
    "EscrowAgent",
    "EscrowError",
    "OpenTransaction",
    "basis_publication",
    "build_with_payload",
    "simple_transfer",
    "decompose_tensor",
    "obligation_lambda",
    "tensor_intro_all",
    "decode_bundle",
    "decode_transaction",
    "encode_bundle",
    "encode_transaction",
    "AuditReport",
    "audit_chain",
    "currency",
    "pca",
]
