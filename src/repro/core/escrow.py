"""Open transactions and type-checking escrow (paper §7).

An *open transaction* is "a transaction with holes that anyone can fill
in": a missing input txout (whose required type is fixed) and a missing
output principal.  By itself it proves nothing — Bitcoin cannot typecheck —
so the asset rides in escrow: the issuer parks it under the escrow agents'
keys, publishes the signed template, and each agent's policy is "to sign
any instance of the transaction that type checks."  With a 2-of-3 script,
"participants can tolerate one of the three agents becoming compromised."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.script import Op, Script
from repro.bitcoin.sighash import SigHashType, signature_hash
from repro.bitcoin.standard import ScriptType, classify, multisig_script
from repro.bitcoin.transaction import OutPoint, Transaction
from repro.core.overlay import OverlayError, check_carrier_correspondence
from repro.core.transaction import (
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
)
from repro.core.validate import (
    Ledger,
    ValidationFailure,
    check_typecoin_transaction,
    world_at,
)
from repro.core.verifier import ClaimBundle, VerificationError, verify_claim
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import sha256
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.secp256k1 import Point
from repro.lf.basis import Basis
from repro.logic.encoding import _blob, _uint, encode_proof, encode_prop
from repro.logic.proofterms import ProofTerm
from repro.logic.propositions import Proposition, props_equal


class EscrowError(Exception):
    """An escrow agent refused to sign, or a template is malformed."""


@dataclass(frozen=True)
class OpenOutput:
    """An output whose recipient may be a hole (None = "fill me in")."""

    prop: Proposition
    amount: int
    recipient_pubkey: bytes | None


@dataclass(frozen=True)
class OpenTransaction:
    """A transaction template with one input hole and open recipients.

    ``fixed_inputs`` are pinned txouts (e.g. the escrowed prize);
    ``hole_prop``/``hole_amount`` constrain what the filler must supply
    (e.g. the solution); outputs with ``recipient_pubkey=None`` go to the
    filler.

    The template's ``proof`` has type ``(A₁ ⊗ … ⊗ Aₘ) ⊸ B`` over the input
    and output tensors only — receipts mention the filled-in principals, so
    :meth:`fill` wraps the template proof into the full transaction
    obligation once the holes are known.  One proof covers every instance —
    "the transaction is only valid if his txout really does have the
    solution".
    """

    basis: Basis
    grant: Proposition
    fixed_inputs: tuple[TypecoinInput, ...]
    hole_prop: Proposition
    hole_amount: int
    hole_position: int  # where the filled input slots into the input list
    outputs: tuple[OpenOutput, ...]
    proof: ProofTerm

    def __init__(
        self, basis, grant, fixed_inputs, hole_prop, hole_amount,
        hole_position, outputs, proof,
    ):
        object.__setattr__(self, "basis", basis)
        object.__setattr__(self, "grant", grant)
        object.__setattr__(self, "fixed_inputs", tuple(fixed_inputs))
        object.__setattr__(self, "hole_prop", hole_prop)
        object.__setattr__(self, "hole_amount", hole_amount)
        object.__setattr__(self, "hole_position", hole_position)
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "proof", proof)
        if not 0 <= hole_position <= len(self.fixed_inputs):
            raise EscrowError("hole position out of range")

    def template_payload(self) -> bytes:
        """What the issuer signs: the template with holes marked."""
        parts = [b"typecoin-open:"]
        parts.append(_uint(len(self.fixed_inputs)))
        for inp in self.fixed_inputs:
            parts.append(
                _blob(inp.txid) + _uint(inp.index) + encode_prop(inp.prop)
                + _uint(inp.amount)
            )
        parts.append(_uint(self.hole_position))
        parts.append(encode_prop(self.hole_prop) + _uint(self.hole_amount))
        parts.append(_uint(len(self.outputs)))
        for out in self.outputs:
            parts.append(encode_prop(out.prop) + _uint(out.amount))
            parts.append(_blob(out.recipient_pubkey or b""))
        parts.append(encode_proof(self.proof))
        parts.append(encode_prop(self.grant))
        return b"".join(parts)

    def fill(
        self, solution: TypecoinInput, filler_pubkey: bytes
    ) -> TypecoinTransaction:
        """Instantiate the template: plug the input hole and recipients."""
        if not props_equal(solution.prop, self.hole_prop):
            raise EscrowError(
                "filled input's type does not match the template hole"
            )
        if solution.amount != self.hole_amount:
            raise EscrowError(
                "filled input's amount does not match the template hole"
            )
        inputs = list(self.fixed_inputs)
        inputs.insert(self.hole_position, solution)
        outputs = [
            TypecoinOutput(
                out.prop, out.amount, out.recipient_pubkey or filler_pubkey
            )
            for out in self.outputs
        ]
        from repro.core.proofs import obligation_lambda, tensor_intro_all
        from repro.logic.proofterms import LolliElim

        proof = obligation_lambda(
            self.grant,
            [inp.prop for inp in inputs],
            [out.receipt() for out in outputs],
            lambda _c, ins, _rs: LolliElim(
                self.proof, tensor_intro_all(list(ins))
            ),
        )
        return TypecoinTransaction(self.basis, self.grant, inputs, outputs, proof)


def sign_template(key: PrivateKey, template: OpenTransaction) -> bytes:
    """The issuer's signature over the open-transaction template."""
    return key.sign(template.template_payload()).encode()


def template_signature_valid(
    pubkey: bytes, template: OpenTransaction, signature: bytes
) -> bool:
    try:
        point = Point.decode(pubkey)
        sig = Signature.decode(signature)
    except ValueError:
        return False
    from repro.crypto.ecdsa import verify

    return verify(point, sha256(template.template_payload()), sig)


# ----------------------------------------------------------------------
# Distributed multisig signing
# ----------------------------------------------------------------------


def escrow_lock(agent_pubkeys: list[bytes], required: int = 2) -> Script:
    """The m-of-n lock the escrowed asset sits under (2-of-3 by default)."""
    return multisig_script(required, agent_pubkeys)


def multisig_partial_signature(
    key: PrivateKey,
    tx: Transaction,
    input_index: int,
    script_pubkey: Script,
    hash_type: int = SigHashType.ALL,
) -> bytes:
    """One agent's contribution to an m-of-n input."""
    digest = signature_hash(tx, input_index, script_pubkey, hash_type)
    return key.sign_digest(digest).encode() + bytes([hash_type])


def assemble_multisig_input(
    tx: Transaction,
    input_index: int,
    script_pubkey: Script,
    signatures_by_pubkey: dict[bytes, bytes],
) -> Transaction:
    """Order the collected signatures by key order and attach the scriptSig.

    CHECKMULTISIG requires signatures in the same order as the keys they
    match; extra signatures beyond m are dropped.
    """
    info = classify(script_pubkey)
    if info.type is not ScriptType.MULTISIG:
        raise EscrowError("not a multisig lock")
    ordered = [
        signatures_by_pubkey[pubkey]
        for pubkey in info.data
        if pubkey in signatures_by_pubkey
    ]
    if len(ordered) < info.required_sigs:
        raise EscrowError(
            f"have {len(ordered)} signatures, lock requires"
            f" {info.required_sigs}"
        )
    script_sig = Script([Op.OP_0, *ordered[: info.required_sigs]])
    return tx.with_input_script(input_index, script_sig)


# ----------------------------------------------------------------------
# The agent
# ----------------------------------------------------------------------


@dataclass
class EscrowAgent:
    """A type-checking escrow agent (§7).

    Holds one key of the pool's m-of-n lock.  Its entire policy: sign any
    instance of an issuer-authorized open transaction that typechecks.
    A compromised agent (``honest=False``) refuses everything — the pool's
    m-of-n threshold is what tolerates it.
    """

    key: PrivateKey
    chain: Blockchain
    ledger: Ledger
    honest: bool = True
    signed: list[bytes] = field(default_factory=list)

    @property
    def pubkey(self) -> bytes:
        return self.key.public.encoded

    def consider(
        self,
        template: OpenTransaction,
        issuer_pubkey: bytes,
        issuer_signature: bytes,
        solution: TypecoinInput,
        filler_pubkey: bytes,
        carrier: Transaction,
        escrow_input_index: int,
        escrow_script: Script,
        bundle: ClaimBundle | None = None,
    ) -> bytes:
        """Verify an instance and return this agent's partial signature.

        Raises :class:`EscrowError` when the policy says no.
        """
        if not self.honest:
            raise EscrowError("agent unavailable (compromised)")
        if not template_signature_valid(issuer_pubkey, template, issuer_signature):
            raise EscrowError("issuer signature on the template is invalid")

        instance = template.fill(solution, filler_pubkey)

        # The filler substantiates the solution txout's type (§3 protocol).
        ledger = self.ledger
        if bundle is not None:
            try:
                ledger = verify_claim(
                    self.chain, bundle, base_ledger=self.ledger
                )
            except VerificationError as exc:
                raise EscrowError(f"solution claim rejected: {exc}") from exc

        try:
            check_typecoin_transaction(ledger, instance, world_at(self.chain))
        except ValidationFailure as exc:
            raise EscrowError(f"instance does not typecheck: {exc}") from exc
        try:
            check_carrier_correspondence(carrier, instance)
        except OverlayError as exc:
            raise EscrowError(f"carrier mismatch: {exc}") from exc

        signature = multisig_partial_signature(
            self.key, carrier, escrow_input_index, escrow_script
        )
        self.signed.append(instance.hash)
        return signature
