"""Proof-carrying authorization on Typecoin (paper §1–§2).

The motivating application: single-use authorization credentials.  This
module packages the homework vocabulary — files, ``may_read``/``may_write``
and the nonce-infused ``may_write_this`` — plus a :class:`FileServer` that
runs the §2 protocol:

    "Bob submits the write to the file system, which replies with a nonce
    n.  Bob then submits a Typecoin transaction that alters his credential
    to include the nonce ...  Once the filesystem sees the nonce in a
    confirmed transaction, it recognizes that Bob has committed to the
    write, so it performs it."
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from repro.bitcoin.chain import Blockchain
from repro.lf.basis import Basis, KindDecl, NAT_T, PRINCIPAL_T, PropDecl, TypeDecl
from repro.lf.syntax import (
    Const,
    ConstRef,
    KIND_PROP,
    KIND_TYPE,
    KPi,
    NatLit,
    PrincipalLit,
    TConst,
    Term,
    Var,
    apply_family,
)
from repro.logic.propositions import Atom, Forall, Lolli, Proposition, Says
from repro.core.verifier import ClaimBundle, VerificationError, verify_claim


@dataclass(frozen=True)
class AuthVocabulary:
    """Constant references of a published authorization basis."""

    file: ConstRef
    may_read: ConstRef
    may_write: ConstRef
    may_write_this: ConstRef
    use_write: ConstRef
    files: dict[str, ConstRef]

    def resolved(self, txid: bytes) -> "AuthVocabulary":
        return AuthVocabulary(
            file=self.file.resolved(txid),
            may_read=self.may_read.resolved(txid),
            may_write=self.may_write.resolved(txid),
            may_write_this=self.may_write_this.resolved(txid),
            use_write=self.use_write.resolved(txid),
            files={name: ref.resolved(txid) for name, ref in self.files.items()},
        )

    def file_term(self, name: str) -> Const:
        return Const(self.files[name])

    def may_read_prop(self, who: Term, filename: str) -> Atom:
        return Atom(
            apply_family(TConst(self.may_read), who, self.file_term(filename))
        )

    def may_write_prop(self, who: Term, filename: str) -> Atom:
        return Atom(
            apply_family(TConst(self.may_write), who, self.file_term(filename))
        )

    def may_write_this_prop(self, who: Term, filename: str, nonce: int | Term) -> Atom:
        n = NatLit(nonce) if isinstance(nonce, int) else nonce
        return Atom(
            apply_family(
                TConst(self.may_write_this), who, self.file_term(filename), n
            )
        )


def authorization_basis(
    owner: PrincipalLit, filenames: list[str]
) -> tuple[Basis, AuthVocabulary]:
    """The §2 vocabulary, published by the resource owner.

    Declares the ``file`` type with one constant per named file, the
    ``may_read``/``may_write``/``may_write_this`` families, and the rule
    that lets a credential holder infuse a nonce::

        use_write : ∀K:principal. ∀F:file. ∀N:nat.
                    ⟨owner⟩may_write K F ⊸ may_write_this K F N
    """
    basis = Basis()
    file_ref = basis.declare_local("file", KindDecl(KIND_TYPE))
    files = {
        name: basis.declare_local(name, TypeDecl(TConst(file_ref)))
        for name in filenames
    }
    may_read = basis.declare_local(
        "may_read",
        KindDecl(KPi("k", PRINCIPAL_T, KPi("f", TConst(file_ref), KIND_PROP))),
    )
    may_write = basis.declare_local(
        "may_write",
        KindDecl(KPi("k", PRINCIPAL_T, KPi("f", TConst(file_ref), KIND_PROP))),
    )
    may_write_this = basis.declare_local(
        "may_write_this",
        KindDecl(
            KPi(
                "k",
                PRINCIPAL_T,
                KPi("f", TConst(file_ref), KPi("n", NAT_T, KIND_PROP)),
            )
        ),
    )

    def mw(k: str, f: str) -> Atom:
        return Atom(apply_family(TConst(may_write), Var(k), Var(f)))

    def mwt(k: str, f: str, n: str) -> Atom:
        return Atom(apply_family(TConst(may_write_this), Var(k), Var(f), Var(n)))

    use_write = basis.declare_local(
        "use_write",
        PropDecl(
            Forall("K", PRINCIPAL_T, Forall("F", TConst(file_ref), Forall(
                "N", NAT_T,
                Lolli(Says(owner, mw("K", "F")), mwt("K", "F", "N")),
            )))
        ),
    )
    vocab = AuthVocabulary(
        file=file_ref,
        may_read=may_read,
        may_write=may_write,
        may_write_this=may_write_this,
        use_write=use_write,
        files=files,
    )
    return basis, vocab


@dataclass
class WriteTicket:
    """An outstanding nonce issued to a would-be writer."""

    principal: bytes
    filename: str
    nonce: int


class FileServerError(Exception):
    """A write was refused."""


@dataclass
class FileServer:
    """The verifying resource owner of §2.

    Tracks file contents, issues nonces, and performs writes only once a
    confirmed transaction demonstrates a nonce-infused credential.
    """

    chain: Blockchain
    vocab: AuthVocabulary
    min_confirmations: int = 1
    contents: dict[str, bytes] = field(default_factory=dict)
    _tickets: dict[int, WriteTicket] = field(default_factory=dict)
    _used_nonces: set[int] = field(default_factory=set)

    def request_write(self, principal: bytes, filename: str) -> int:
        """Phase 1: hand the writer a nonce for this specific write."""
        if filename not in self.vocab.files:
            raise FileServerError(f"no such file {filename!r}")
        nonce = secrets.randbelow(2**31)
        self._tickets[nonce] = WriteTicket(principal, filename, nonce)
        return nonce

    def expected_prop(self, nonce: int) -> Proposition:
        """The proposition the writer's txout must carry."""
        ticket = self._tickets.get(nonce)
        if ticket is None:
            raise FileServerError("unknown or expired nonce")
        return self.vocab.may_write_this_prop(
            PrincipalLit(ticket.principal), ticket.filename, ticket.nonce
        )

    def complete_write(self, nonce: int, bundle: ClaimBundle, data: bytes) -> None:
        """Phase 2: verify the claim and perform the write.

        "Once the filesystem sees the nonce in a confirmed transaction, it
        recognizes that Bob has committed to the write, so it performs it."
        """
        ticket = self._tickets.get(nonce)
        if ticket is None:
            raise FileServerError("unknown or expired nonce")
        if nonce in self._used_nonces:
            raise FileServerError("nonce already used")
        expected = self.expected_prop(nonce)
        from repro.logic.propositions import props_equal

        if not props_equal(bundle.prop, expected):
            raise FileServerError("claimed proposition does not match ticket")
        try:
            verify_claim(
                self.chain,
                bundle,
                min_confirmations=self.min_confirmations,
                require_unspent=False,  # spending the spent credential later
                # is the writer's cleanup business (§3.1)
            )
        except VerificationError as exc:
            raise FileServerError(f"claim rejected: {exc}") from exc
        self._used_nonces.add(nonce)
        del self._tickets[nonce]
        self.contents[ticket.filename] = data
