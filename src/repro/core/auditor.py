"""Chain auditing: the 𝔗 : Σ judgement over a whole blockchain.

Appendix A's *chain formation* judgement says a Typecoin history is valid
when every transaction, in order, satisfies 𝔗;Σ ⊢ T ok and contributes its
resolved basis to Σ_global.  The auditor replays that judgement across an
entire Bitcoin chain given the off-chain store of Typecoin transactions —
the "full node" of the Typecoin world, useful for archival verification
and for bootstrapping fresh verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitcoin.chain import Blockchain
from repro.core.overlay import OverlayError, check_carrier_correspondence
from repro.core.transaction import TypecoinTransaction, referenced_txids
from repro.core.validate import (
    Ledger,
    ValidationFailure,
    check_typecoin_transaction,
    world_at,
)


@dataclass
class AuditIssue:
    """One problem found while auditing."""

    carrier_txid: bytes
    reason: str

    def __str__(self) -> str:
        return f"{self.carrier_txid[:8].hex()}…: {self.reason}"


@dataclass
class AuditReport:
    """Outcome of a full-chain audit."""

    ledger: Ledger
    accepted: list[bytes] = field(default_factory=list)
    issues: list[AuditIssue] = field(default_factory=list)
    unmatched: list[bytes] = field(default_factory=list)  # store entries not on-chain

    @property
    def ok(self) -> bool:
        return not self.issues and not self.unmatched


def audit_chain(
    chain: Blockchain,
    store: dict[bytes, TypecoinTransaction],
    strict: bool = False,
) -> AuditReport:
    """Replay chain formation over the active chain.

    ``store`` maps carrier txids to the off-chain Typecoin transactions
    (which, per §3, live with interested parties, not on the network).
    Transactions are processed in block order — exactly the order the
    judgement accumulates Σ_global.  With ``strict`` a single invalid
    transaction raises; otherwise it is recorded and skipped, along with
    everything downstream of it.
    """
    report = AuditReport(ledger=Ledger())
    seen: set[bytes] = set()
    rejected: set[bytes] = set()

    for height in range(chain.height + 1):
        block = chain.block_at(height)
        for tx in block.txs:
            txid = tx.txid
            txn = store.get(txid)
            if txn is None:
                continue
            seen.add(txid)
            # Skip anything depending on an already-rejected transaction.
            tainted = referenced_txids(txn) & rejected
            if tainted:
                rejected.add(txid)
                report.issues.append(
                    AuditIssue(txid, "depends on a rejected transaction")
                )
                continue
            try:
                check_carrier_correspondence(tx, txn)
                check_typecoin_transaction(
                    report.ledger, txn, world_at(chain, height)
                )
            except (OverlayError, ValidationFailure) as exc:
                if strict:
                    raise
                rejected.add(txid)
                report.issues.append(AuditIssue(txid, str(exc)))
                continue
            report.ledger.register(txid, txn)
            report.accepted.append(txid)

    report.unmatched = [txid for txid in store if txid not in seen]
    return report
