"""The Bitcoin overlay: carrying Typecoin transactions on Bitcoin (§3, §3.3).

The full Typecoin transaction is hashed and the hash embedded into its
carrier Bitcoin transaction.  Since Bitcoin has no metadata field and
non-standard scripts are not relayed, the hash travels as the second "public
key" of a standard 1-of-2 multisig output — spendable with the single real
key, so the unspent-txout table can eventually be garbage collected.

Two rejected strategies are also implemented so experiment E4 can measure
why the paper rejects them: the bogus P2PK output (permanent UTXO
deadweight) and, for comparison with the post-paper world, OP_RETURN.
"""

from __future__ import annotations

import enum

from repro.bitcoin.chain import Blockchain
from repro.bitcoin.script import Script
from repro.bitcoin.standard import (
    ScriptType,
    classify,
    multisig_script,
    op_return_script,
    p2pk_script,
    p2pkh_script,
)
from repro.bitcoin.transaction import OutPoint, Transaction, TxIn, TxOut
from repro.bitcoin.wallet import Spendable, Wallet, WalletError
from repro.core.transaction import TypecoinTransaction

DUST_SAFE_AMOUNT = 600  # §3: "all the bitcoin amounts will be very small"
BOGUS_OUTPUT_AMOUNT = 546  # the minimum a bogus output must burn


class OverlayError(Exception):
    """The carrier transaction cannot be built or does not correspond."""


class EmbeddingStrategy(enum.Enum):
    """How the Typecoin hash is embedded into the carrier (§3.3)."""

    MULTISIG_1OF2 = "multisig-1of2"  # the paper's choice
    BOGUS_OUTPUT = "bogus-output"  # rejected: permanent UTXO deadweight
    OP_RETURN = "op-return"  # modern alternative, for comparison


def metadata_pubkey(txn_hash: bytes) -> bytes:
    """Dress a 32-byte hash as a compressed public key (0x02 ‖ hash)."""
    if len(txn_hash) != 32:
        raise OverlayError("metadata must be a 32-byte hash")
    return b"\x02" + txn_hash


def output_script(
    recipient_pubkey: bytes,
    txn_hash: bytes,
    strategy: EmbeddingStrategy = EmbeddingStrategy.MULTISIG_1OF2,
) -> Script:
    """The carrier lock for one Typecoin output."""
    if strategy is EmbeddingStrategy.MULTISIG_1OF2:
        return multisig_script(1, [recipient_pubkey, metadata_pubkey(txn_hash)])
    # The other strategies put the metadata elsewhere; outputs lock to the
    # recipient's key hash.
    from repro.crypto.hashing import hash160

    return p2pkh_script(hash160(recipient_pubkey))


def build_carrier(
    chain: Blockchain,
    wallet: Wallet,
    txn: TypecoinTransaction,
    fee: int,
    strategy: EmbeddingStrategy = EmbeddingStrategy.MULTISIG_1OF2,
    exclude: set[OutPoint] | None = None,
    script_overrides: dict[int, Script] | None = None,
    skip_sign: set[OutPoint] | None = None,
) -> Transaction:
    """Build and sign the Bitcoin transaction carrying ``txn``.

    Carrier layout:

    * inputs 0..m-1 — exactly the Typecoin inputs' outpoints (the wallet
      must hold the real keys of their 1-of-2 locks);
    * further inputs — trivial type-1 funding inputs from the wallet
      (§3.1: "bring a transaction into balance, or ... pay the fee");
    * outputs 0..n-1 — one per Typecoin output, value = its amount;
    * optional metadata output (bogus/OP_RETURN strategies);
    * optional change output (type 1, back to the wallet).
    """
    txn_hash = txn.hash

    spendables: list[Spendable] = []
    for inp in txn.inputs:
        outpoint = OutPoint(inp.txid, inp.index)
        entry = chain.utxos.get(outpoint)
        if entry is None:
            raise OverlayError(f"carrier input {outpoint} is missing or spent")
        if entry.output.value != inp.amount:
            raise OverlayError(
                f"carrier input {outpoint} holds {entry.output.value} sat,"
                f" transaction declares {inp.amount}"
            )
        spendables.append(
            Spendable(outpoint, entry.output, entry.height, entry.is_coinbase)
        )

    overrides = script_overrides or {}
    outputs = [
        TxOut(
            out.amount,
            overrides.get(
                index, output_script(out.recipient_pubkey, txn_hash, strategy)
            ),
        )
        for index, out in enumerate(txn.outputs)
    ]
    if overrides and strategy is EmbeddingStrategy.MULTISIG_1OF2:
        # Overridden scripts (e.g. 2-of-3 escrow locks) may leave no output
        # carrying the metadata key; ensure the hash is embedded somewhere.
        embedded = any(
            carrier_embeds_hash(
                Transaction([TxIn(OutPoint(b"\x00" * 32, 0))], [out]), txn_hash
            )
            for out in outputs
        )
        if not embedded:
            outputs.append(
                TxOut(
                    DUST_SAFE_AMOUNT,
                    multisig_script(
                        1,
                        [wallet.default_key.public.encoded, metadata_pubkey(txn_hash)],
                    ),
                )
            )
    if strategy is EmbeddingStrategy.BOGUS_OUTPUT:
        outputs.append(
            TxOut(BOGUS_OUTPUT_AMOUNT, p2pk_script(metadata_pubkey(txn_hash)))
        )
    elif strategy is EmbeddingStrategy.OP_RETURN:
        outputs.append(TxOut(0, op_return_script(txn_hash)))

    try:
        return wallet.create_transaction(
            chain,
            outputs,
            fee=fee,
            extra_inputs=spendables,
            exclude=exclude,
            skip_sign=skip_sign,
        )
    except WalletError as exc:
        raise OverlayError(str(exc)) from exc


def carrier_embeds_hash(
    carrier: Transaction,
    txn_hash: bytes,
    strategy: EmbeddingStrategy | None = None,
) -> bool:
    """Does the carrier commit to this Typecoin transaction hash?

    With no strategy given, all three embeddings are recognized.
    """
    meta_key = metadata_pubkey(txn_hash)
    for out in carrier.vout:
        info = classify(out.script_pubkey)
        if strategy in (None, EmbeddingStrategy.MULTISIG_1OF2):
            if info.type is ScriptType.MULTISIG and meta_key in info.data:
                return True
        if strategy in (None, EmbeddingStrategy.BOGUS_OUTPUT):
            if info.type is ScriptType.P2PK and info.data == (meta_key,):
                return True
        if strategy in (None, EmbeddingStrategy.OP_RETURN):
            if info.type is ScriptType.OP_RETURN and info.data == (txn_hash,):
                return True
    return False


def check_carrier_correspondence(
    carrier: Transaction,
    txn: TypecoinTransaction,
) -> None:
    """Verify carrier ↔ Typecoin structural agreement (§3).

    Bitcoin checks conditions 1–4 of §2 itself; here we check what it
    cannot: the hash embedding, that the carrier spends exactly the declared
    Typecoin inputs (in order, as its first inputs), and that each Typecoin
    output is realized by the matching carrier output — right value, locked
    to the declared recipient.
    """
    if not carrier_embeds_hash(carrier, txn.hash):
        raise OverlayError("carrier does not embed the transaction hash")
    if len(carrier.vin) < len(txn.inputs):
        raise OverlayError("carrier has fewer inputs than the Typecoin level")
    for position, inp in enumerate(txn.inputs):
        prevout = carrier.vin[position].prevout
        if prevout != OutPoint(inp.txid, inp.index):
            raise OverlayError(
                f"carrier input {position} spends {prevout}, expected"
                f" {inp.txid[:8].hex()}….{inp.index}"
            )
    if len(carrier.vout) < len(txn.outputs):
        raise OverlayError("carrier has fewer outputs than the Typecoin level")
    for position, out in enumerate(txn.outputs):
        txout = carrier.vout[position]
        if txout.value != out.amount:
            raise OverlayError(
                f"carrier output {position} carries {txout.value} sat,"
                f" Typecoin declares {out.amount}"
            )
        if not _locked_to(txout.script_pubkey, out.recipient_pubkey):
            raise OverlayError(
                f"carrier output {position} is not locked to the declared"
                " recipient"
            )


def _locked_to(script: Script, recipient_pubkey: bytes) -> bool:
    from repro.crypto.hashing import hash160

    info = classify(script)
    if info.type is ScriptType.MULTISIG:
        return recipient_pubkey in info.data
    if info.type is ScriptType.P2PKH:
        return info.data == (hash160(recipient_pubkey),)
    if info.type is ScriptType.P2PK:
        return info.data == (recipient_pubkey,)
    return False
