"""The §3 verification protocol: checking a claimed typed txout.

"When Bob tries to turn in his homework, he identifies to the filesystem a
txout (say I) that he claims has the type may-write-this(...).  To
substantiate his claim, he provides the Typecoin transaction T_I that
outputs I, as well as 𝔗, the set of all Typecoin transactions upstream of
T_I.  The type-checker then checks that I's type is as claimed, and checks,
for each T ∈ 𝔗, that:

1. The hash of T agrees with the hash embedded in its corresponding Bitcoin
   transaction.
2. T type-checks.
3. The type of each input of T agrees with the type of the output it
   spends."

Verification is performed *by interested parties, outside the Bitcoin
mechanism* — the network never sees a proposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.bitcoin.chain import Blockchain
from repro.bitcoin.transaction import OutPoint
from repro.core.overlay import OverlayError, check_carrier_correspondence
from repro.core.transaction import TypecoinTransaction
from repro.core.validate import (
    Ledger,
    ValidationFailure,
    check_typecoin_transaction,
    world_at,
)
from repro.logic.propositions import (
    Proposition,
    normalize_prop,
    props_equal,
)


class VerificationError(Exception):
    """A claim failed verification, with the failing check named."""


@dataclass
class ClaimBundle:
    """What a prover hands a verifier: the claimed txout and type, plus
    T_I and all Typecoin transactions upstream of it, keyed by carrier
    txid."""

    outpoint: OutPoint
    prop: Proposition
    transactions: dict[bytes, TypecoinTransaction] = field(default_factory=dict)


def _topological_order(
    transactions: dict[bytes, TypecoinTransaction]
) -> list[bytes]:
    """Order the bundle so every transaction follows the ones it spends."""
    from repro.core.transaction import referenced_txids

    pending = dict(transactions)
    placed: list[bytes] = []
    placed_set: set[bytes] = set()
    while pending:
        progressed = False
        for txid in list(pending):
            txn = pending[txid]
            deps = {
                dep
                for dep in referenced_txids(txn)
                if dep in transactions and dep != txid
            }
            if deps <= placed_set:
                placed.append(txid)
                placed_set.add(txid)
                del pending[txid]
                progressed = True
        if not progressed:
            raise VerificationError(
                "claim bundle contains a dependency cycle"
            )
    return placed


def verify_claim(
    chain: Blockchain,
    bundle: ClaimBundle,
    min_confirmations: int = 1,
    require_unspent: bool = True,
    base_ledger: Ledger | None = None,
) -> Ledger:
    """Run the full §3 protocol; returns the ledger built from the bundle.

    ``min_confirmations`` is the verifier's confirmation policy (§1 item 6
    suggests six ≈ one hour; regtest tests use one).  ``base_ledger`` seeds
    verification with already-trusted history (e.g. a batch server's own
    records) — the bundle only needs transactions *beyond* it.
    """
    if not obs.ENABLED:
        return _verify_claim(
            chain, bundle, min_confirmations, require_unspent, base_ledger
        )
    with obs.trace_span(
        "verify.claim",
        metric="verify.claim_seconds",
        carriers=len(bundle.transactions),
    ):
        ledger = _verify_claim(
            chain, bundle, min_confirmations, require_unspent, base_ledger
        )
    obs.inc("verify.claims_total")
    obs.inc("verify.carriers_total", len(bundle.transactions))
    return ledger


def _verify_claim(
    chain: Blockchain,
    bundle: ClaimBundle,
    min_confirmations: int,
    require_unspent: bool,
    base_ledger: Ledger | None,
) -> Ledger:
    if base_ledger is not None:
        ledger = Ledger(
            global_basis=base_ledger.global_basis,
            transactions=dict(base_ledger.transactions),
            outputs={k: v for k, v in base_ledger.outputs.items()},
        )
    else:
        ledger = Ledger()

    for txid in _topological_order(bundle.transactions):
        txn = bundle.transactions[txid]
        if txid in ledger.transactions:
            continue
        found = chain.get_transaction(txid)
        if found is None:
            raise VerificationError(
                f"carrier {txid[:8].hex()}… is not in the active chain"
            )
        carrier, height = found
        confirmations = chain.height - height + 1
        if confirmations < min_confirmations:
            raise VerificationError(
                f"carrier {txid[:8].hex()}… has {confirmations}"
                f" confirmations, policy requires {min_confirmations}"
            )
        # Check 1: the hash embedding (and full structural correspondence).
        try:
            check_carrier_correspondence(carrier, txn)
        except OverlayError as exc:
            raise VerificationError(f"hash embedding check failed: {exc}") from exc
        # Checks 2 and 3: the transaction typechecks against history, with
        # conditions discharged in the world where it confirmed.
        world = world_at(chain, height)
        try:
            check_typecoin_transaction(ledger, txn, world)
        except ValidationFailure as exc:
            raise VerificationError(f"type check failed: {exc}") from exc
        ledger.register(txid, txn)

    # Finally: I's type is as claimed.
    target = ledger.output(bundle.outpoint.txid, bundle.outpoint.index)
    if target is None:
        raise VerificationError("claimed txout is not produced by the bundle")
    if not props_equal(target.prop, bundle.prop):
        raise VerificationError(
            f"claimed type {normalize_prop(bundle.prop)} but output has type"
            f" {normalize_prop(target.prop)}"
        )
    if require_unspent and chain.is_spent(bundle.outpoint):
        raise VerificationError("claimed txout has already been spent")
    return ledger
