"""Fallback transaction lists (paper §5).

"Typecoin allows users to submit a list of fallback transactions.  If the
primary transaction turns out to be invalid, the first valid fallback
transaction is used instead. ...  All the transactions in the list must map
onto the same Bitcoin transaction.  This means that they must agree on the
input txouts, the output principals, and the input and output Bitcoin
amounts."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transaction import TypecoinTransaction
from repro.core.validate import Ledger, ValidationFailure, check_typecoin_transaction
from repro.logic.conditions import WorldView


class FallbackError(Exception):
    """The fallback list is inconsistent at the Bitcoin level."""


@dataclass(frozen=True)
class FallbackList:
    """A primary transaction plus ordered fallbacks sharing one carrier.

    Note the paper's caveat: because the Bitcoin amounts must agree, "a
    fallback transaction cannot recover payment made on an expired or
    revoked contract" — escrow (§7) is the remedy when that matters.
    """

    primary: TypecoinTransaction
    fallbacks: tuple[TypecoinTransaction, ...]

    def __init__(self, primary: TypecoinTransaction, fallbacks):
        object.__setattr__(self, "primary", primary)
        object.__setattr__(self, "fallbacks", tuple(fallbacks))
        for index, fallback in enumerate(self.fallbacks):
            self._check_same_carrier_image(primary, fallback, index)

    @staticmethod
    def _check_same_carrier_image(
        primary: TypecoinTransaction,
        fallback: TypecoinTransaction,
        index: int,
    ) -> None:
        if [(i.txid, i.index, i.amount) for i in primary.inputs] != [
            (i.txid, i.index, i.amount) for i in fallback.inputs
        ]:
            raise FallbackError(
                f"fallback {index} disagrees with the primary on input"
                " txouts or amounts"
            )
        if [(o.recipient_pubkey, o.amount) for o in primary.outputs] != [
            (o.recipient_pubkey, o.amount) for o in fallback.outputs
        ]:
            raise FallbackError(
                f"fallback {index} disagrees with the primary on output"
                " principals or amounts"
            )

    def all_transactions(self) -> tuple[TypecoinTransaction, ...]:
        return (self.primary, *self.fallbacks)

    def select_valid(
        self, ledger: Ledger, world: WorldView
    ) -> tuple[int, TypecoinTransaction] | None:
        """The transaction that actually takes effect in ``world``: the
        primary if valid, else the first valid fallback, else None (the
        inputs are spoiled)."""
        for index, txn in enumerate(self.all_transactions()):
            try:
                check_typecoin_transaction(ledger, txn, world)
            except ValidationFailure:
                continue
            return index, txn
        return None
