"""Batch mode: a credential server amortizing latency and fees (§3.2).

"In batch mode, a trusted third-party maintains a credential server that
holds Typecoin resources on behalf of other principals.  When principals
wish to conduct a batch-mode transaction, they notify the server, which
records the transaction but does not submit it to the network."  On
withdrawal "the server batches together all the transactions upstream of
the resource in question, routing that resource to its owner's key and the
rest back to its own key."

Scope notes (documented in DESIGN.md):

* virtual transactions may not carry local bases or affine grants, and may
  not use affine ``assert`` — those forms are bound to a specific on-chain
  transaction, so they must be written through;
* per §5, "batch-mode servers must write transactions discharging anything
  other than true through to the blockchain": a virtual proof whose result
  is conditional raises :class:`WriteThroughRequired`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro import obs
from repro.bitcoin.transaction import OutPoint, Transaction
from repro.core.proofs import (
    decompose_tensor,
    obligation_lambda,
    tensor_intro_all,
)
from repro.core.transaction import (
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
)
from repro.core.validate import Ledger
from repro.core.verifier import ClaimBundle, VerificationError, verify_claim
from repro.core.wallet import TypecoinClient
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash160, sha256
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.secp256k1 import Point
from repro.lf.basis import Basis
from repro.logic import proofterms as pt
from repro.logic.checker import CheckerContext, ProofError, infer
from repro.logic.encoding import _blob, _uint, encode_prop
from repro.logic.propositions import (
    IfProp,
    Lolli,
    One,
    Proposition,
    normalize_prop,
    props_equal,
    tensor_all,
)


class BatchError(Exception):
    """A batch-mode operation was refused."""


class WriteThroughRequired(BatchError):
    """The operation discharges a non-trivial condition (or uses a
    transaction-bound form) and must go to the blockchain instead."""


@dataclass(frozen=True)
class VirtualOutput:
    """A resource a virtual transaction creates, and who owns it."""

    prop: Proposition
    amount: int
    owner: bytes  # 20-byte principal


@dataclass(frozen=True)
class VirtualTransaction:
    """A recorded-but-not-submitted transaction (§3.2).

    ``inputs`` name server-held resources by id; the proof must have type
    A ⊸ B with A the inputs tensor and B the outputs tensor.
    """

    inputs: tuple[int, ...]
    outputs: tuple[VirtualOutput, ...]
    proof: pt.ProofTerm

    def __init__(self, inputs, outputs, proof):
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "proof", proof)

    def payload(self) -> bytes:
        """What input owners sign to authorize this transaction."""
        parts = [b"typecoin-batch:"]
        parts.append(_uint(len(self.inputs)))
        for resource_id in self.inputs:
            parts.append(_uint(resource_id))
        parts.append(_uint(len(self.outputs)))
        for out in self.outputs:
            parts.append(encode_prop(out.prop) + _uint(out.amount) + _blob(out.owner))
        return b"".join(parts)


def _proof_uses_affine_assert(term) -> bool:
    import dataclasses

    if isinstance(term, pt.Assert):
        return True
    if not dataclasses.is_dataclass(term):
        return False
    for field_info in dataclasses.fields(term):
        value = getattr(term, field_info.name)
        if isinstance(value, tuple):
            if any(_proof_uses_affine_assert(v) for v in value):
                return True
        elif _proof_uses_affine_assert(value):
            return True
    return False


@dataclass
class _Resource:
    prop: Proposition
    amount: int
    owner: bytes
    # Where the backing came from: an on-chain outpoint, or a virtual
    # transaction's output.
    onchain: OutPoint | None = None
    virtual: tuple[int, int] | None = None  # (vtx id, output index)
    consumed_by: int | None = None  # vtx id
    withdrawn: bool = False


class BatchServer:
    """The §3.2 credential server."""

    def __init__(self, net, seed: bytes, ledger: Ledger | None = None):
        self.client = TypecoinClient(net, seed, ledger)
        self._resources: dict[int, _Resource] = {}
        self._vtxs: dict[int, VirtualTransaction] = {}
        self._ids = itertools.count(1)

    @property
    def net(self):
        return self.client.net

    @property
    def principal(self) -> bytes:
        return self.client.principal

    @property
    def pubkey(self) -> bytes:
        return self.client.pubkey

    # -- deposits --------------------------------------------------------

    def deposit(self, bundle: ClaimBundle, owner: bytes) -> int:
        """Accept a resource a principal sent to the server's key.

        The server verifies the §3 claim itself (it is an "interested
        party"), requires the txout to be locked to its own key, and
        credits ``owner``.
        """
        if obs.ENABLED:
            with obs.trace_span("batch.deposit", owner=owner.hex()[:8]):
                return self._deposit(bundle, owner)
        return self._deposit(bundle, owner)

    def _deposit(self, bundle: ClaimBundle, owner: bytes) -> int:
        try:
            ledger = verify_claim(
                self.net.chain, bundle, base_ledger=self.client.ledger
            )
        except VerificationError as exc:
            raise BatchError(f"deposit rejected: {exc}") from exc
        entry = ledger.output(bundle.outpoint.txid, bundle.outpoint.index)
        assert entry is not None
        if entry.principal != self.principal:
            raise BatchError("deposited txout is not locked to the server")
        # Adopt the verified history into the server's own ledger.
        for txid, txn in bundle.transactions.items():
            if txid not in self.client.ledger.transactions:
                self.client.learn(txid, txn)
        resource_id = next(self._ids)
        self._resources[resource_id] = _Resource(
            prop=entry.prop,
            amount=entry.amount,
            owner=owner,
            onchain=bundle.outpoint,
        )
        return resource_id

    # -- queries -----------------------------------------------------------

    def query(self, resource_id: int) -> VirtualOutput | None:
        """Answer a validity question "based on its own records" (§3.2)."""
        resource = self._resources.get(resource_id)
        if resource is None or resource.consumed_by is not None or resource.withdrawn:
            return None
        return VirtualOutput(resource.prop, resource.amount, resource.owner)

    def holdings_of(self, owner: bytes) -> dict[int, VirtualOutput]:
        return {
            rid: VirtualOutput(r.prop, r.amount, r.owner)
            for rid, r in self._resources.items()
            if r.owner == owner and r.consumed_by is None and not r.withdrawn
        }

    # -- virtual transactions -----------------------------------------------

    def transact(
        self,
        vtx: VirtualTransaction,
        authorizations: dict[bytes, tuple[bytes, bytes]],
    ) -> int:
        """Record a batch-mode transaction.

        ``authorizations`` maps each input owner's principal to a
        (pubkey, signature) pair over :meth:`VirtualTransaction.payload`.
        """
        if obs.ENABLED:
            with obs.trace_span("batch.transact", inputs=len(vtx.inputs)):
                return self._transact(vtx, authorizations)
        return self._transact(vtx, authorizations)

    def _transact(
        self,
        vtx: VirtualTransaction,
        authorizations: dict[bytes, tuple[bytes, bytes]],
    ) -> int:
        if not vtx.inputs:
            raise BatchError("virtual transactions need at least one input")
        if _proof_uses_affine_assert(vtx.proof):
            raise WriteThroughRequired(
                "affine assert signs a real transaction; write through"
            )
        input_props = []
        total_in = 0
        for resource_id in vtx.inputs:
            resource = self._resources.get(resource_id)
            if resource is None:
                raise BatchError(f"unknown resource {resource_id}")
            if resource.consumed_by is not None or resource.withdrawn:
                raise BatchError(f"resource {resource_id} is no longer held")
            self._check_authorization(resource.owner, vtx, authorizations)
            input_props.append(resource.prop)
            total_in += resource.amount
        total_out = sum(out.amount for out in vtx.outputs)
        if total_in != total_out:
            raise BatchError(
                f"virtual transaction does not conserve satoshis"
                f" ({total_in} in, {total_out} out)"
            )

        # Type check: proof must prove A ⊸ B unconditionally.
        ctx = CheckerContext(basis=self.client.ledger.global_basis)
        try:
            proved, _ = infer(ctx, vtx.proof)
        except ProofError as exc:
            raise BatchError(f"virtual proof does not check: {exc}") from exc
        proved = normalize_prop(proved)
        if not isinstance(proved, Lolli):
            raise BatchError("virtual proof must be an implication")
        if not props_equal(proved.antecedent, tensor_all(input_props)):
            raise BatchError("virtual proof consumes the wrong resources")
        consequent = normalize_prop(proved.consequent)
        if isinstance(consequent, IfProp):
            raise WriteThroughRequired(
                "conditional discharge must be written through (§5)"
            )
        expected = tensor_all([out.prop for out in vtx.outputs])
        if not props_equal(consequent, expected):
            raise BatchError("virtual proof produces the wrong resources")

        vtx_id = next(self._ids)
        self._vtxs[vtx_id] = vtx
        for resource_id in vtx.inputs:
            self._resources[resource_id].consumed_by = vtx_id
        for index, out in enumerate(vtx.outputs):
            new_id = next(self._ids)
            self._resources[new_id] = _Resource(
                prop=out.prop,
                amount=out.amount,
                owner=out.owner,
                virtual=(vtx_id, index),
            )
        return vtx_id

    def _check_authorization(
        self,
        owner: bytes,
        vtx: VirtualTransaction,
        authorizations: dict[bytes, tuple[bytes, bytes]],
    ) -> None:
        if owner == self.principal:
            return  # the server authorizes its own spends implicitly
        auth = authorizations.get(owner)
        if auth is None:
            raise BatchError(f"missing authorization from {owner.hex()[:8]}…")
        pubkey_bytes, signature_bytes = auth
        if hash160(pubkey_bytes) != owner:
            raise BatchError("authorization key does not match owner")
        try:
            point = Point.decode(pubkey_bytes)
            signature = Signature.decode(signature_bytes)
        except ValueError as exc:
            raise BatchError(f"malformed authorization: {exc}") from exc
        from repro.crypto.ecdsa import verify

        if not verify(point, sha256(vtx.payload()), signature):
            raise BatchError("authorization signature invalid")

    # -- withdrawal --------------------------------------------------------

    def withdraw(
        self, resource_id: int, recipient_pubkey: bytes, fee: int = 10_000
    ) -> Transaction:
        """Materialize a held resource on-chain (§3.2).

        Builds one Typecoin transaction whose inputs are every on-chain
        txout backing the affected virtual history, routes the withdrawn
        resource to ``recipient_pubkey``, the other live resources back to
        the server's key, and submits it.  Returns the carrier.
        """
        if obs.ENABLED:
            with obs.trace_span("batch.withdraw", resource=resource_id):
                return self._withdraw(resource_id, recipient_pubkey, fee)
        return self._withdraw(resource_id, recipient_pubkey, fee)

    def _withdraw(
        self, resource_id: int, recipient_pubkey: bytes, fee: int
    ) -> Transaction:
        target = self._resources.get(resource_id)
        if target is None or target.consumed_by is not None or target.withdrawn:
            raise BatchError("resource is not available for withdrawal")
        if hash160(recipient_pubkey) != target.owner:
            raise BatchError("withdrawal key does not match the owner")

        if target.onchain is not None and not self._vtx_children(resource_id):
            # Directly held on-chain: a plain one-in-one-out transfer.
            vtx_order: list[int] = []
        else:
            vtx_order = self._affected_vtxs(resource_id)

        roots, live = self._roots_and_live(vtx_order, resource_id)

        inputs = [
            self.client.input_for(self._resources[rid].onchain)
            for rid in roots
        ]
        outputs = [TypecoinOutput(target.prop, target.amount, recipient_pubkey)]
        for rid in live:
            resource = self._resources[rid]
            outputs.append(
                TypecoinOutput(resource.prop, resource.amount, self.pubkey)
            )
        proof = self._compose_proof(roots, vtx_order, [resource_id] + live, outputs)
        txn = TypecoinTransaction(Basis(), One(), inputs, outputs, proof)
        carrier = self.client.submit(txn, fee=fee)
        target.withdrawn = True
        for rid in live:
            # The rest re-enter as fresh on-chain holdings after confirm;
            # callers invoke sync() to rebind them.
            self._resources[rid].withdrawn = True
        self._pending_rebind = (carrier.txid, [(resource_id, 0)] + [
            (rid, idx + 1) for idx, rid in enumerate(live)
        ])
        return carrier

    def sync(self) -> None:
        """Register confirmed submissions; rebind surviving resources to
        their new on-chain outpoints."""
        registered = set(self.client.sync())
        pending = getattr(self, "_pending_rebind", None)
        if pending and pending[0] in registered:
            carrier_txid, bindings = pending
            for rid, output_index in bindings:
                if output_index == 0:
                    continue  # withdrawn to its owner; it left the server
                resource = self._resources[rid]
                # The rest routed back to the server's key: resurrect each
                # as a fresh on-chain holding for the same beneficial owner.
                new_id = next(self._ids)
                self._resources[new_id] = _Resource(
                    prop=resource.prop,
                    amount=resource.amount,
                    owner=resource.owner,
                    onchain=OutPoint(carrier_txid, output_index),
                )
            self._pending_rebind = None

    # -- internals -----------------------------------------------------------

    def _vtx_children(self, resource_id: int) -> list[int]:
        return [
            vtx_id
            for vtx_id, vtx in self._vtxs.items()
            if resource_id in vtx.inputs
        ]

    def _affected_vtxs(self, resource_id: int) -> list[int]:
        """All virtual transactions entangled with the target's history:
        backward closure, then forward closure over shared roots."""
        affected: set[int] = set()
        frontier_resources = {resource_id}
        while True:
            before = len(affected)
            # Backward: producers of any frontier resource.
            for rid in list(frontier_resources):
                resource = self._resources[rid]
                if resource.virtual is not None:
                    vtx_id = resource.virtual[0]
                    if vtx_id not in affected:
                        affected.add(vtx_id)
                        frontier_resources.update(self._vtxs[vtx_id].inputs)
            # Forward: consumers of any output of an affected vtx.
            for vtx_id in list(affected):
                for rid, resource in self._resources.items():
                    if resource.virtual and resource.virtual[0] == vtx_id:
                        if resource.consumed_by is not None:
                            child = resource.consumed_by
                            if child not in affected:
                                affected.add(child)
                                frontier_resources.update(self._vtxs[child].inputs)
            if len(affected) == before:
                break
        return self._topo_vtxs(affected)

    def _topo_vtxs(self, vtx_ids: set[int]) -> list[int]:
        order: list[int] = []
        placed: set[int] = set()
        pending = set(vtx_ids)
        while pending:
            progressed = False
            for vtx_id in sorted(pending):
                deps = set()
                for rid in self._vtxs[vtx_id].inputs:
                    resource = self._resources[rid]
                    if resource.virtual and resource.virtual[0] in vtx_ids:
                        deps.add(resource.virtual[0])
                if deps <= placed:
                    order.append(vtx_id)
                    placed.add(vtx_id)
                    pending.discard(vtx_id)
                    progressed = True
            if not progressed:  # pragma: no cover - acyclic by construction
                raise BatchError("virtual history contains a cycle")
        return order

    def _roots_and_live(
        self, vtx_order: list[int], target_id: int
    ) -> tuple[list[int], list[int]]:
        in_closure = set(vtx_order)
        roots: list[int] = []
        live: list[int] = []
        if not vtx_order:
            return [target_id], []
        for rid, resource in sorted(self._resources.items()):
            if resource.withdrawn:
                continue
            produced_in = resource.virtual and resource.virtual[0] in in_closure
            consumed_in = resource.consumed_by in in_closure
            if resource.onchain is not None and consumed_in:
                roots.append(rid)
            elif produced_in and resource.consumed_by is None and rid != target_id:
                live.append(rid)
        return roots, live

    def _compose_proof(
        self,
        root_ids: list[int],
        vtx_order: list[int],
        final_resource_ids: list[int],
        outputs: list[TypecoinOutput],
    ) -> pt.ProofTerm:
        """Compose the virtual proofs into one transaction proof.

        Replay each virtual transaction in order, binding its outputs, then
        assemble the final outputs tensor in declared order.
        """
        if not vtx_order:
            # Direct transfer: identity on the single input.
            return obligation_lambda(
                One(),
                [self._resources[root_ids[0]].prop],
                [out.receipt() for out in outputs],
                lambda _c, ins, _rs: tensor_intro_all(list(ins)),
            )

        def body(_c, input_vars, _receipts):
            bound: dict[int, pt.ProofTerm] = dict(zip(root_ids, input_vars))

            def replay(step: int) -> pt.ProofTerm:
                if step == len(vtx_order):
                    return tensor_intro_all(
                        [bound[rid] for rid in final_resource_ids]
                    )
                vtx_id = vtx_order[step]
                vtx = self._vtxs[vtx_id]
                arg = tensor_intro_all([bound[rid] for rid in vtx.inputs])
                result = pt.LolliElim(vtx.proof, arg)
                produced_ids = [
                    rid
                    for rid, resource in sorted(self._resources.items())
                    if resource.virtual and resource.virtual[0] == vtx_id
                ]

                def bind_outputs(vars_):
                    for rid, var in zip(produced_ids, vars_):
                        bound[rid] = var
                    return replay(step + 1)

                return decompose_tensor(
                    result, len(produced_ids), bind_outputs, prefix=f"v{vtx_id}_"
                )

            return replay(0)

        return obligation_lambda(
            One(),
            [self._resources[rid].prop for rid in root_ids],
            [out.receipt() for out in outputs],
            body,
        )


def authorize(key: PrivateKey, vtx: VirtualTransaction) -> tuple[bytes, bytes]:
    """An owner's authorization pair for :meth:`BatchServer.transact`."""
    signature = key.sign(vtx.payload())
    return key.public.encoded, signature.encode()
