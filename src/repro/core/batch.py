"""Batch mode: a credential server amortizing latency and fees (§3.2).

"In batch mode, a trusted third-party maintains a credential server that
holds Typecoin resources on behalf of other principals.  When principals
wish to conduct a batch-mode transaction, they notify the server, which
records the transaction but does not submit it to the network."  On
withdrawal "the server batches together all the transactions upstream of
the resource in question, routing that resource to its owner's key and the
rest back to its own key."

Scope notes (documented in DESIGN.md):

* virtual transactions may not carry local bases or affine grants, and may
  not use affine ``assert`` — those forms are bound to a specific on-chain
  transaction, so they must be written through;
* per §5, "batch-mode servers must write transactions discharging anything
  other than true through to the blockchain": a virtual proof whose result
  is conditional raises :class:`WriteThroughRequired`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro import cancel, obs
from repro.bitcoin.transaction import OutPoint, Transaction
from repro.core.proofs import (
    decompose_tensor,
    obligation_lambda,
    tensor_intro_all,
)
from repro.core.transaction import (
    TypecoinInput,
    TypecoinOutput,
    TypecoinTransaction,
)
from repro.core.validate import Ledger
from repro.core.verifier import (
    ClaimBundle,
    VerificationError,
    _topological_order,
    verify_claim,
)
from repro.core.wallet import TypecoinClient
from repro.core.wire import (
    decode_bundle,
    decode_transaction,
    encode_bundle,
    encode_transaction,
)
from repro.crypto.ecdsa import Signature
from repro.crypto.hashing import hash160, sha256
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.secp256k1 import Point
from repro.lf.basis import Basis
from repro.logic import proofterms as pt
from repro.logic.checker import CheckerContext, ProofError, infer
from repro.logic.decoding import Cursor, decode_proof, decode_prop
from repro.logic.encoding import _blob, _uint, encode_proof, encode_prop
from repro.logic.propositions import (
    IfProp,
    Lolli,
    One,
    Proposition,
    normalize_prop,
    props_equal,
    tensor_all,
)


class BatchError(Exception):
    """A batch-mode operation was refused."""


class WriteThroughRequired(BatchError):
    """The operation discharges a non-trivial condition (or uses a
    transaction-bound form) and must go to the blockchain instead."""


@dataclass(frozen=True)
class VirtualOutput:
    """A resource a virtual transaction creates, and who owns it."""

    prop: Proposition
    amount: int
    owner: bytes  # 20-byte principal


@dataclass(frozen=True)
class VirtualTransaction:
    """A recorded-but-not-submitted transaction (§3.2).

    ``inputs`` name server-held resources by id; the proof must have type
    A ⊸ B with A the inputs tensor and B the outputs tensor.
    """

    inputs: tuple[int, ...]
    outputs: tuple[VirtualOutput, ...]
    proof: pt.ProofTerm

    def __init__(self, inputs, outputs, proof):
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "proof", proof)

    def payload(self) -> bytes:
        """What input owners sign to authorize this transaction."""
        parts = [b"typecoin-batch:"]
        parts.append(_uint(len(self.inputs)))
        for resource_id in self.inputs:
            parts.append(_uint(resource_id))
        parts.append(_uint(len(self.outputs)))
        for out in self.outputs:
            parts.append(encode_prop(out.prop) + _uint(out.amount) + _blob(out.owner))
        return b"".join(parts)


def _proof_uses_affine_assert(term) -> bool:
    import dataclasses

    if isinstance(term, pt.Assert):
        return True
    if not dataclasses.is_dataclass(term):
        return False
    for field_info in dataclasses.fields(term):
        value = getattr(term, field_info.name)
        if isinstance(value, tuple):
            if any(_proof_uses_affine_assert(v) for v in value):
                return True
        elif _proof_uses_affine_assert(value):
            return True
    return False


@dataclass
class _Resource:
    prop: Proposition
    amount: int
    owner: bytes
    # Where the backing came from: an on-chain outpoint, or a virtual
    # transaction's output.
    onchain: OutPoint | None = None
    virtual: tuple[int, int] | None = None  # (vtx id, output index)
    consumed_by: int | None = None  # vtx id
    withdrawn: bool = False


class BatchServer:
    """The §3.2 credential server.

    With ``journal_path`` set, every accepted operation appends one JSONL
    record to a durable journal, and constructing a server over an
    existing journal *replays* it: deposits and virtual transactions are
    re-verified from scratch (the journal is trusted for *what* happened,
    never for *whether it was valid*), while withdrawals re-apply their
    recorded effects without resubmitting anything to the network — the
    carrier is already on (or bound for) the chain, so a restart can
    never discharge the same resource twice.
    """

    def __init__(
        self,
        net,
        seed: bytes,
        ledger: Ledger | None = None,
        journal_path: str | None = None,
    ):
        self.client = TypecoinClient(net, seed, ledger)
        self._resources: dict[int, _Resource] = {}
        self._vtxs: dict[int, VirtualTransaction] = {}
        # Manual id counter (not itertools.count) so journal replay can
        # reproduce the exact id sequence of the original process.
        self._next_id = 1
        self._pending_rebind: tuple[bytes, list] | None = None
        # payload digest -> vtx id: duplicate notifies collapse (§3.2
        # "principals ... notify the server" — the notify may be retried).
        self._seen_payloads: dict[bytes, int] = {}
        # Carriers recovered from the journal that the fresh wallet client
        # never tracked; sync() adopts them once confirmed.
        self._recovered_pending: dict[bytes, TypecoinTransaction] = {}
        self._journal_path = journal_path
        self._replaying = False
        if journal_path is not None and os.path.exists(journal_path):
            self._replay_journal()

    def _new_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    @property
    def net(self):
        return self.client.net

    @property
    def principal(self) -> bytes:
        return self.client.principal

    @property
    def pubkey(self) -> bytes:
        return self.client.pubkey

    # -- deposits --------------------------------------------------------

    def deposit(self, bundle: ClaimBundle, owner: bytes) -> int:
        """Accept a resource a principal sent to the server's key.

        The server verifies the §3 claim itself (it is an "interested
        party"), requires the txout to be locked to its own key, and
        credits ``owner``.
        """
        if obs.ENABLED:
            with obs.trace_span("batch.deposit", owner=owner.hex()[:8]):
                return self._deposit(bundle, owner)
        return self._deposit(bundle, owner)

    def _deposit(self, bundle: ClaimBundle, owner: bytes) -> int:
        try:
            # Replay relaxes ONLY the is-currently-unspent check: the
            # journal witnessed the outpoint unspent at deposit time, and
            # the spend that exists now is our own later withdrawal
            # carrier.  Everything type-level is still re-verified.
            ledger = verify_claim(
                self.net.chain,
                bundle,
                require_unspent=not self._replaying,
                base_ledger=self.client.ledger,
            )
        except VerificationError as exc:
            raise BatchError(f"deposit rejected: {exc}") from exc
        entry = ledger.output(bundle.outpoint.txid, bundle.outpoint.index)
        assert entry is not None
        if entry.principal != self.principal:
            raise BatchError("deposited txout is not locked to the server")
        # Adopt the verified history into the server's own ledger, parents
        # first — with a fresh ledger (journal replay after a restart) a
        # child would otherwise fail to re-validate before its ancestors.
        for txid in _topological_order(bundle.transactions):
            if txid not in self.client.ledger.transactions:
                self.client.learn(txid, bundle.transactions[txid])
        resource_id = self._new_id()
        self._resources[resource_id] = _Resource(
            prop=entry.prop,
            amount=entry.amount,
            owner=owner,
            onchain=bundle.outpoint,
        )
        self._journal(
            {
                "op": "deposit",
                "bundle": encode_bundle(bundle).hex(),
                "owner": owner.hex(),
            }
        )
        return resource_id

    # -- queries -----------------------------------------------------------

    def query(self, resource_id: int) -> VirtualOutput | None:
        """Answer a validity question "based on its own records" (§3.2)."""
        resource = self._resources.get(resource_id)
        if resource is None or resource.consumed_by is not None or resource.withdrawn:
            return None
        return VirtualOutput(resource.prop, resource.amount, resource.owner)

    def holdings_of(self, owner: bytes) -> dict[int, VirtualOutput]:
        return {
            rid: VirtualOutput(r.prop, r.amount, r.owner)
            for rid, r in self._resources.items()
            if r.owner == owner and r.consumed_by is None and not r.withdrawn
        }

    # -- virtual transactions -----------------------------------------------

    def transact(
        self,
        vtx: VirtualTransaction,
        authorizations: dict[bytes, tuple[bytes, bytes]],
    ) -> int:
        """Record a batch-mode transaction.

        ``authorizations`` maps each input owner's principal to a
        (pubkey, signature) pair over :meth:`VirtualTransaction.payload`.
        """
        if obs.ENABLED:
            with obs.trace_span("batch.transact", inputs=len(vtx.inputs)):
                return self._transact(vtx, authorizations)
        return self._transact(vtx, authorizations)

    def _transact(
        self,
        vtx: VirtualTransaction,
        authorizations: dict[bytes, tuple[bytes, bytes]],
    ) -> int:
        if not vtx.inputs:
            raise BatchError("virtual transactions need at least one input")
        # Duplicate notify: the payload signs the complete operation, so
        # an identical payload IS the same transaction — re-notifying
        # (client retry, at-least-once delivery) returns the original id
        # instead of failing on already-consumed inputs.
        digest = sha256(vtx.payload())
        already = self._seen_payloads.get(digest)
        if already is not None:
            return already
        if _proof_uses_affine_assert(vtx.proof):
            raise WriteThroughRequired(
                "affine assert signs a real transaction; write through"
            )
        input_props = []
        total_in = 0
        for resource_id in vtx.inputs:
            resource = self._resources.get(resource_id)
            if resource is None:
                raise BatchError(f"unknown resource {resource_id}")
            if resource.consumed_by is not None or resource.withdrawn:
                raise BatchError(f"resource {resource_id} is no longer held")
            self._check_authorization(resource.owner, vtx, authorizations)
            input_props.append(resource.prop)
            total_in += resource.amount
        total_out = sum(out.amount for out in vtx.outputs)
        if total_in != total_out:
            raise BatchError(
                f"virtual transaction does not conserve satoshis"
                f" ({total_in} in, {total_out} out)"
            )

        # Type check: proof must prove A ⊸ B unconditionally.
        ctx = CheckerContext(basis=self.client.ledger.global_basis)
        try:
            proved, _ = infer(ctx, vtx.proof)
        except ProofError as exc:
            raise BatchError(f"virtual proof does not check: {exc}") from exc
        proved = normalize_prop(proved)
        if not isinstance(proved, Lolli):
            raise BatchError("virtual proof must be an implication")
        if not props_equal(proved.antecedent, tensor_all(input_props)):
            raise BatchError("virtual proof consumes the wrong resources")
        consequent = normalize_prop(proved.consequent)
        if isinstance(consequent, IfProp):
            raise WriteThroughRequired(
                "conditional discharge must be written through (§5)"
            )
        expected = tensor_all([out.prop for out in vtx.outputs])
        if not props_equal(consequent, expected):
            raise BatchError("virtual proof produces the wrong resources")

        vtx_id = self._new_id()
        self._vtxs[vtx_id] = vtx
        self._seen_payloads[digest] = vtx_id
        for resource_id in vtx.inputs:
            self._resources[resource_id].consumed_by = vtx_id
        for index, out in enumerate(vtx.outputs):
            new_id = self._new_id()
            self._resources[new_id] = _Resource(
                prop=out.prop,
                amount=out.amount,
                owner=out.owner,
                virtual=(vtx_id, index),
            )
        self._journal(
            {
                "op": "transact",
                "inputs": list(vtx.inputs),
                "outputs": [
                    [encode_prop(out.prop).hex(), out.amount, out.owner.hex()]
                    for out in vtx.outputs
                ],
                "proof": encode_proof(vtx.proof).hex(),
                "auth": {
                    owner.hex(): [pub.hex(), sig.hex()]
                    for owner, (pub, sig) in authorizations.items()
                },
            }
        )
        return vtx_id

    def _check_authorization(
        self,
        owner: bytes,
        vtx: VirtualTransaction,
        authorizations: dict[bytes, tuple[bytes, bytes]],
    ) -> None:
        if owner == self.principal:
            return  # the server authorizes its own spends implicitly
        auth = authorizations.get(owner)
        if auth is None:
            raise BatchError(f"missing authorization from {owner.hex()[:8]}…")
        pubkey_bytes, signature_bytes = auth
        if hash160(pubkey_bytes) != owner:
            raise BatchError("authorization key does not match owner")
        try:
            point = Point.decode(pubkey_bytes)
            signature = Signature.decode(signature_bytes)
        except ValueError as exc:
            raise BatchError(f"malformed authorization: {exc}") from exc
        from repro.crypto.ecdsa import verify

        if not verify(point, sha256(vtx.payload()), signature):
            raise BatchError("authorization signature invalid")

    # -- withdrawal --------------------------------------------------------

    def withdraw(
        self,
        resource_id: int,
        recipient_pubkey: bytes,
        fee: int = 10_000,
        deadline: cancel.Deadline | None = None,
    ) -> Transaction:
        """Materialize a held resource on-chain (§3.2).

        Builds one Typecoin transaction whose inputs are every on-chain
        txout backing the affected virtual history, routes the withdrawn
        resource to ``recipient_pubkey``, the other live resources back to
        the server's key, and submits it.  Returns the carrier.

        ``deadline`` bounds the operation: an expired deadline — on
        entry, or after proof composition but *before* submission — is
        refused with :class:`~repro.cancel.DeadlineExceeded` and leaves
        the server's records untouched, so the caller can simply retry.
        State mutates only after the carrier is handed to the network.
        """
        if obs.ENABLED:
            with obs.trace_span("batch.withdraw", resource=resource_id):
                return self._withdraw(
                    resource_id, recipient_pubkey, fee, deadline
                )
        return self._withdraw(resource_id, recipient_pubkey, fee, deadline)

    def _withdraw(
        self,
        resource_id: int,
        recipient_pubkey: bytes,
        fee: int,
        deadline: cancel.Deadline | None = None,
    ) -> Transaction:
        if deadline is not None and deadline.expired():
            raise cancel.DeadlineExceeded("withdrawal deadline already expired")
        target = self._resources.get(resource_id)
        if target is None or target.consumed_by is not None or target.withdrawn:
            raise BatchError("resource is not available for withdrawal")
        if hash160(recipient_pubkey) != target.owner:
            raise BatchError("withdrawal key does not match the owner")

        if target.onchain is not None and not self._vtx_children(resource_id):
            # Directly held on-chain: a plain one-in-one-out transfer.
            vtx_order: list[int] = []
        else:
            vtx_order = self._affected_vtxs(resource_id)

        roots, live = self._roots_and_live(vtx_order, resource_id)

        inputs = [
            self.client.input_for(self._resources[rid].onchain)
            for rid in roots
        ]
        outputs = [TypecoinOutput(target.prop, target.amount, recipient_pubkey)]
        for rid in live:
            resource = self._resources[rid]
            outputs.append(
                TypecoinOutput(resource.prop, resource.amount, self.pubkey)
            )
        proof = self._compose_proof(roots, vtx_order, [resource_id] + live, outputs)
        txn = TypecoinTransaction(Basis(), One(), inputs, outputs, proof)
        if deadline is not None and deadline.expired():
            # Refuse *before* submission: nothing has mutated yet, so the
            # caller can retry with a fresh deadline and identical effect.
            raise cancel.DeadlineExceeded("withdrawal deadline expired")
        carrier = self.client.submit(txn, fee=fee)
        target.withdrawn = True
        for rid in live:
            # The rest re-enter as fresh on-chain holdings after confirm;
            # callers invoke sync() to rebind them.
            self._resources[rid].withdrawn = True
        bindings = [(resource_id, 0)] + [
            (rid, idx + 1) for idx, rid in enumerate(live)
        ]
        self._pending_rebind = (carrier.txid, bindings)
        self._journal(
            {
                "op": "withdraw",
                "resource": resource_id,
                "live": live,
                "carrier": carrier.txid.hex(),
                "txn": encode_transaction(txn).hex(),
                "bindings": [[rid, idx] for rid, idx in bindings],
            }
        )
        return carrier

    def sync(self) -> None:
        """Register confirmed submissions; rebind surviving resources to
        their new on-chain outpoints."""
        registered = set(self.client.sync())
        # Carriers recovered from the journal were submitted by a previous
        # process, so the fresh wallet's pending set never saw them: watch
        # the chain directly and adopt each once it confirms.
        for carrier_txid in list(self._recovered_pending):
            if self.net.chain.confirmations(carrier_txid) >= 1:
                txn = self._recovered_pending.pop(carrier_txid)
                if carrier_txid not in self.client.ledger.transactions:
                    self.client.learn(carrier_txid, txn)
                registered.add(carrier_txid)
        pending = self._pending_rebind
        if pending and pending[0] in registered:
            carrier_txid, bindings = pending
            self._apply_rebind(carrier_txid, bindings)
            # The rebind itself must be journaled: a replay that re-applied
            # the withdraw but not this step would rebind *again* on its
            # first sync, duplicating every surviving resource.
            self._journal({"op": "rebind", "carrier": carrier_txid.hex()})

    def _apply_rebind(self, carrier_txid: bytes, bindings: list) -> None:
        for rid, output_index in bindings:
            if output_index == 0:
                continue  # withdrawn to its owner; it left the server
            resource = self._resources[rid]
            # The rest routed back to the server's key: resurrect each
            # as a fresh on-chain holding for the same beneficial owner.
            new_id = self._new_id()
            self._resources[new_id] = _Resource(
                prop=resource.prop,
                amount=resource.amount,
                owner=resource.owner,
                onchain=OutPoint(carrier_txid, output_index),
            )
        self._pending_rebind = None

    # -- durability ----------------------------------------------------------

    def _journal(self, record: dict) -> None:
        if self._journal_path is None or self._replaying:
            return
        with open(self._journal_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _replay_journal(self) -> None:
        """Rebuild server state from the journal (constructor path).

        Deposits and virtual transactions run back through the normal
        verification entry points — the journal records *what* was asked,
        and every record must still prove itself against the chain and the
        checker.  Withdrawals are different: their carrier was already
        submitted, so replay re-applies the recorded effects (mark
        withdrawn, stage the rebind) without submitting anything, which is
        what makes a crash-restart unable to discharge a resource twice.
        """
        self._replaying = True
        try:
            with open(self._journal_path, encoding="utf-8") as handle:
                lines = handle.readlines()
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail: the process died mid-append
                self._apply_journal(record)
        finally:
            self._replaying = False

    def _apply_journal(self, record: dict) -> None:
        op = record["op"]
        if op == "deposit":
            self._deposit(
                decode_bundle(bytes.fromhex(record["bundle"])),
                bytes.fromhex(record["owner"]),
            )
        elif op == "transact":
            outputs = [
                VirtualOutput(
                    decode_prop(Cursor(bytes.fromhex(prop_hex))),
                    amount,
                    bytes.fromhex(owner_hex),
                )
                for prop_hex, amount, owner_hex in record["outputs"]
            ]
            vtx = VirtualTransaction(
                record["inputs"],
                outputs,
                decode_proof(Cursor(bytes.fromhex(record["proof"]))),
            )
            auths = {
                bytes.fromhex(owner_hex): (
                    bytes.fromhex(pub_hex),
                    bytes.fromhex(sig_hex),
                )
                for owner_hex, (pub_hex, sig_hex) in record["auth"].items()
            }
            self._transact(vtx, auths)
        elif op == "withdraw":
            carrier_txid = bytes.fromhex(record["carrier"])
            self._resources[record["resource"]].withdrawn = True
            for rid in record["live"]:
                self._resources[rid].withdrawn = True
            self._pending_rebind = (
                carrier_txid,
                [(rid, idx) for rid, idx in record["bindings"]],
            )
            # Decoded, not resubmitted: sync() adopts it once confirmed.
            self._recovered_pending[carrier_txid] = decode_transaction(
                bytes.fromhex(record["txn"])
            )
        elif op == "rebind":
            carrier_txid = bytes.fromhex(record["carrier"])
            txn = self._recovered_pending.pop(carrier_txid, None)
            if txn is not None and (
                carrier_txid not in self.client.ledger.transactions
            ):
                self.client.learn(carrier_txid, txn)
            pending = self._pending_rebind
            if pending and pending[0] == carrier_txid:
                self._apply_rebind(carrier_txid, pending[1])
        else:  # pragma: no cover - future-proofing
            raise BatchError(f"unknown journal record {op!r}")

    # -- internals -----------------------------------------------------------

    def _vtx_children(self, resource_id: int) -> list[int]:
        return [
            vtx_id
            for vtx_id, vtx in self._vtxs.items()
            if resource_id in vtx.inputs
        ]

    def _affected_vtxs(self, resource_id: int) -> list[int]:
        """All virtual transactions entangled with the target's history:
        backward closure, then forward closure over shared roots."""
        affected: set[int] = set()
        frontier_resources = {resource_id}
        while True:
            before = len(affected)
            # Backward: producers of any frontier resource.
            for rid in list(frontier_resources):
                resource = self._resources[rid]
                if resource.virtual is not None:
                    vtx_id = resource.virtual[0]
                    if vtx_id not in affected:
                        affected.add(vtx_id)
                        frontier_resources.update(self._vtxs[vtx_id].inputs)
            # Forward: consumers of any output of an affected vtx.
            for vtx_id in list(affected):
                for rid, resource in self._resources.items():
                    if resource.virtual and resource.virtual[0] == vtx_id:
                        if resource.consumed_by is not None:
                            child = resource.consumed_by
                            if child not in affected:
                                affected.add(child)
                                frontier_resources.update(self._vtxs[child].inputs)
            if len(affected) == before:
                break
        return self._topo_vtxs(affected)

    def _topo_vtxs(self, vtx_ids: set[int]) -> list[int]:
        order: list[int] = []
        placed: set[int] = set()
        pending = set(vtx_ids)
        while pending:
            progressed = False
            for vtx_id in sorted(pending):
                deps = set()
                for rid in self._vtxs[vtx_id].inputs:
                    resource = self._resources[rid]
                    if resource.virtual and resource.virtual[0] in vtx_ids:
                        deps.add(resource.virtual[0])
                if deps <= placed:
                    order.append(vtx_id)
                    placed.add(vtx_id)
                    pending.discard(vtx_id)
                    progressed = True
            if not progressed:  # pragma: no cover - acyclic by construction
                raise BatchError("virtual history contains a cycle")
        return order

    def _roots_and_live(
        self, vtx_order: list[int], target_id: int
    ) -> tuple[list[int], list[int]]:
        in_closure = set(vtx_order)
        roots: list[int] = []
        live: list[int] = []
        if not vtx_order:
            return [target_id], []
        for rid, resource in sorted(self._resources.items()):
            if resource.withdrawn:
                continue
            produced_in = resource.virtual and resource.virtual[0] in in_closure
            consumed_in = resource.consumed_by in in_closure
            if resource.onchain is not None and consumed_in:
                roots.append(rid)
            elif produced_in and resource.consumed_by is None and rid != target_id:
                live.append(rid)
        return roots, live

    def _compose_proof(
        self,
        root_ids: list[int],
        vtx_order: list[int],
        final_resource_ids: list[int],
        outputs: list[TypecoinOutput],
    ) -> pt.ProofTerm:
        """Compose the virtual proofs into one transaction proof.

        Replay each virtual transaction in order, binding its outputs, then
        assemble the final outputs tensor in declared order.
        """
        if not vtx_order:
            # Direct transfer: identity on the single input.
            return obligation_lambda(
                One(),
                [self._resources[root_ids[0]].prop],
                [out.receipt() for out in outputs],
                lambda _c, ins, _rs: tensor_intro_all(list(ins)),
            )

        def body(_c, input_vars, _receipts):
            bound: dict[int, pt.ProofTerm] = dict(zip(root_ids, input_vars))

            def replay(step: int) -> pt.ProofTerm:
                if step == len(vtx_order):
                    return tensor_intro_all(
                        [bound[rid] for rid in final_resource_ids]
                    )
                vtx_id = vtx_order[step]
                vtx = self._vtxs[vtx_id]
                arg = tensor_intro_all([bound[rid] for rid in vtx.inputs])
                result = pt.LolliElim(vtx.proof, arg)
                produced_ids = [
                    rid
                    for rid, resource in sorted(self._resources.items())
                    if resource.virtual and resource.virtual[0] == vtx_id
                ]

                def bind_outputs(vars_):
                    for rid, var in zip(produced_ids, vars_):
                        bound[rid] = var
                    return replay(step + 1)

                return decompose_tensor(
                    result, len(produced_ids), bind_outputs, prefix=f"v{vtx_id}_"
                )

            return replay(0)

        return obligation_lambda(
            One(),
            [self._resources[rid].prop for rid in root_ids],
            [out.receipt() for out in outputs],
            body,
        )


def authorize(key: PrivateKey, vtx: VirtualTransaction) -> tuple[bytes, bytes]:
    """An owner's authorization pair for :meth:`BatchServer.transact`."""
    signature = key.sign(vtx.payload())
    return key.public.encoded, signature.encode()
