"""Typecoin transactions: (Σ, C, ι⃗, ω⃗, M) (paper §4, Figure 1).

* Σ — the local basis, declaring ``this.*`` constants;
* C — the affine grant, a proposition created from nothing (it must pass
  the freshness check, so it can only mention local vocabulary);
* ι⃗ — inputs ``txid.n ↦ A/a``: resources typed A plus a satoshis taken in
  from output n of the carrier transaction txid;
* ω⃗ — outputs ``B/b ↠ K``: resources typed B plus b satoshis sent to
  principal K;
* M — the proof that the transaction balances:
  ``M : (C ⊗ A ⊗ R) ⊸ if(φ, B)``.

Transaction identity: a Typecoin transaction is identified by the txid of
its Bitcoin *carrier* — the transaction its hash is embedded into — so
``this``-resolution and input references both speak Bitcoin txids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.crypto.hashing import sha256d
from repro.lf.basis import Basis
from repro.logic.encoding import _blob, _uint, encode_proof, encode_prop
from repro.logic.propositions import (
    One,
    Proposition,
    Receipt,
    substitute_this_prop,
    tensor_all,
)
from repro.logic.proofterms import ProofTerm
from repro.lf.syntax import PrincipalLit


class TxnError(Exception):
    """Malformed Typecoin transaction structure."""


@dataclass(frozen=True)
class TypecoinInput:
    """ι = txid.n ↦ A/a — spend output ``index`` of carrier ``txid``."""

    txid: bytes
    index: int
    prop: Proposition
    amount: int  # satoshis carried by the txout

    def __post_init__(self) -> None:
        if len(self.txid) != 32:
            raise TxnError("input txid must be 32 bytes")
        if self.index < 0:
            raise TxnError("input index must be non-negative")
        if self.amount < 0:
            raise TxnError("input amount must be non-negative")


@dataclass(frozen=True)
class TypecoinOutput:
    """ω = B/b ↠ K — send resources B and b satoshis to principal K.

    ``recipient_pubkey`` is K's full public key: principals are key hashes
    (§4 fn. 6) but the Bitcoin-level 1-of-2 multisig lock needs the key
    itself, so outputs carry it and derive the principal.
    """

    prop: Proposition
    amount: int
    recipient_pubkey: bytes

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise TxnError("output amount must be non-negative")
        if len(self.recipient_pubkey) != 33:
            raise TxnError("recipient public keys are 33-byte compressed SEC1")

    @property
    def principal(self) -> bytes:
        from repro.crypto.hashing import hash160

        return hash160(self.recipient_pubkey)

    @property
    def principal_term(self) -> PrincipalLit:
        return PrincipalLit(self.principal)

    def receipt(self) -> Receipt:
        """receipt(ω): the receipt resource this output generates (§4)."""
        return Receipt(self.prop, self.amount, self.principal_term)


@dataclass(frozen=True)
class TypecoinTransaction:
    """T = (Σ, C, ι⃗, ω⃗, M)."""

    basis: Basis
    grant: Proposition
    inputs: tuple[TypecoinInput, ...]
    outputs: tuple[TypecoinOutput, ...]
    proof: ProofTerm

    def __init__(self, basis, grant, inputs, outputs, proof):
        object.__setattr__(self, "basis", basis)
        object.__setattr__(self, "grant", grant)
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "proof", proof)
        if not self.outputs:
            raise TxnError("transaction needs at least one output")

    # -- the proof obligation ------------------------------------------

    def obligation_antecedent(self) -> Proposition:
        """C ⊗ A ⊗ R: the grant, the inputs tensor, the receipts tensor."""
        a = tensor_all([inp.prop for inp in self.inputs])
        r = tensor_all([out.receipt() for out in self.outputs])
        from repro.logic.propositions import Tensor

        return Tensor(self.grant, Tensor(a, r))

    def outputs_tensor(self) -> Proposition:
        """B = B₁ ⊗ … ⊗ B_β."""
        return tensor_all([out.prop for out in self.outputs])

    # -- hashing and signing payloads ------------------------------------

    def signing_payload(self) -> bytes:
        """What affine asserts sign: Σ, C, ι⃗, ω⃗ — everything except the
        proof term M, which "need not be signed, and indeed cannot be,
        since it contains the signatures" (§4 fn. 7)."""
        parts = [b"typecoin-txn:", _uint(len(self.basis))]
        for ref, decl in self.basis:
            from repro.lf.basis import KindDecl, PropDecl, TypeDecl
            from repro.logic.encoding import _ref, encode_family, encode_kind

            parts.append(_ref(ref))
            if isinstance(decl, KindDecl):
                parts.append(b"\x01" + encode_kind(decl.kind))
            elif isinstance(decl, TypeDecl):
                parts.append(b"\x02" + encode_family(decl.family))
            elif isinstance(decl, PropDecl):
                parts.append(b"\x03" + encode_prop(decl.prop))
            else:  # pragma: no cover - Declaration is a closed union
                raise TxnError(f"unknown declaration {decl!r}")
        parts.append(encode_prop(self.grant))
        parts.append(_uint(len(self.inputs)))
        for inp in self.inputs:
            parts.append(
                _blob(inp.txid) + _uint(inp.index) + encode_prop(inp.prop)
                + _uint(inp.amount)
            )
        parts.append(_uint(len(self.outputs)))
        for out in self.outputs:
            parts.append(
                encode_prop(out.prop) + _uint(out.amount)
                + _blob(out.recipient_pubkey)
            )
        return b"".join(parts)

    def serialize(self) -> bytes:
        """The full transaction, proof term included."""
        return self.signing_payload() + encode_proof(self.proof)

    @cached_property
    def hash(self) -> bytes:
        """The hash embedded into the Bitcoin carrier (§3)."""
        return sha256d(self.serialize())

    # -- resolution ---------------------------------------------------------

    def output_prop_resolved(self, index: int, carrier_txid: bytes) -> Proposition:
        """Output ``index``'s proposition with ``this`` → the carrier txid.

        Appendix A: "output nᵢ of txidᵢ in 𝔗 is Aᵢ′ and
        Aᵢ = [txidᵢ/this]Aᵢ′".
        """
        if not 0 <= index < len(self.outputs):
            raise TxnError(f"no output {index}")
        return substitute_this_prop(self.outputs[index].prop, carrier_txid)


def trivial_output(recipient_pubkey: bytes, amount: int) -> TypecoinOutput:
    """A type-1 output: plain bitcoins escaping the Typecoin level (§3.1)."""
    return TypecoinOutput(One(), amount, recipient_pubkey)


def referenced_txids(txn: TypecoinTransaction) -> frozenset[bytes]:
    """Every carrier txid this transaction depends on.

    Two kinds of upstream edges: the outputs it spends, and the
    transactions whose bases declared the constants it mentions (anywhere —
    basis bodies, grant, input/output propositions, or the proof term).
    The verifier's "set of all Typecoin transactions upstream" (§3) is the
    closure of both.
    """
    import dataclasses

    from repro.lf.syntax import ConstRef

    found: set[bytes] = {inp.txid for inp in txn.inputs}

    def walk(node) -> None:
        if isinstance(node, ConstRef):
            if isinstance(node.space, bytes):
                found.add(node.space)
            return
        if isinstance(node, (tuple, list)):
            for item in node:
                walk(item)
            return
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            for field_info in dataclasses.fields(node):
                walk(getattr(node, field_info.name))

    for _ref, decl in txn.basis:
        walk(decl)
    walk(txn.grant)
    for inp in txn.inputs:
        walk(inp.prop)
    for out in txn.outputs:
        walk(out.prop)
    walk(txn.proof)
    return frozenset(found)
