"""Proof-term combinators for building transaction proofs.

Every transaction proof has the same outer shape — a λ over the obligation
``C ⊗ A ⊗ R`` followed by tensor decompositions — so this module builds
that scaffolding mechanically and lets callers write only the interesting
body, as a function from bound resource variables to a proof of the outputs
tensor.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.lf.syntax import fresh_name
from repro.logic.propositions import (
    One,
    Proposition,
    Tensor,
    tensor_all,
)
from repro.logic.proofterms import (
    LolliIntro,
    OneIntro,
    ProofTerm,
    PVar,
    TensorElim,
    TensorIntro,
)


def tensor_intro_all(parts: Sequence[ProofTerm]) -> ProofTerm:
    """Right-nested ⊗-introduction matching :func:`tensor_all`'s shape."""
    if not parts:
        return OneIntro()
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = TensorIntro(part, result)
    return result


def decompose_tensor(
    scrutinee: ProofTerm,
    count: int,
    body: Callable[[list[PVar]], ProofTerm],
    prefix: str = "t",
) -> ProofTerm:
    """Eliminate a right-nested ``count``-fold tensor into ``count`` vars.

    With count == 0 the scrutinee proves 1 and is simply dropped (affine
    weakening); with count == 1 the scrutinee itself is the variable.
    """
    if count == 0:
        return body([])
    names = [fresh_name(f"{prefix}{i}") for i in range(count)]

    def nest(index: int, current: ProofTerm) -> ProofTerm:
        if index == count - 1:
            # current proves the last component directly.
            return _bind_alias(names[index], current, after)

        left = names[index]
        rest = fresh_name(f"{prefix}rest")
        return TensorElim(
            left,
            rest,
            current,
            nest(index + 1, PVar(rest)),
        )

    # Build innermost body once all names are bound.
    after = body([PVar(name) for name in names])
    if count == 1:
        return _bind_alias(names[0], scrutinee, after)
    return nest(0, scrutinee)


def _bind_alias(name: str, value: ProofTerm, body: ProofTerm) -> ProofTerm:
    """Bind ``name`` to ``value`` without an annotation, by substituting the
    proof term directly.  Since our proof terms are trees (no sharing), the
    simplest alias is textual replacement of the variable."""
    return _substitute_pvar(body, name, value)


def _substitute_pvar(term: ProofTerm, name: str, value: ProofTerm) -> ProofTerm:
    """Replace free occurrences of PVar(name) with ``value``.

    Proof binders in this module use globally fresh names, so capture is
    not a concern here.
    """
    import dataclasses

    if isinstance(term, PVar):
        return value if term.name == name else term
    if not dataclasses.is_dataclass(term):
        return term
    changes = {}
    for field in dataclasses.fields(term):
        current = getattr(term, field.name)
        if isinstance(current, (PVar,)) or _is_proof(current):
            replaced = _substitute_pvar(current, name, value)
            if replaced is not current:
                changes[field.name] = replaced
    if not changes:
        return term
    return dataclasses.replace(term, **changes)


def _is_proof(value) -> bool:
    from repro.logic import proofterms as pt

    return isinstance(
        value,
        (
            pt.PVar, pt.PConst, pt.LolliIntro, pt.LolliElim, pt.TensorIntro,
            pt.TensorElim, pt.WithIntro, pt.WithFst, pt.WithSnd, pt.PlusInl,
            pt.PlusInr, pt.PlusCase, pt.OneIntro, pt.OneElim, pt.ZeroElim,
            pt.BangIntro, pt.BangElim, pt.ForallIntro, pt.ForallElim,
            pt.ExistsIntro, pt.ExistsElim, pt.SayReturn, pt.SayBind,
            pt.Assert, pt.AssertPersistent, pt.IfReturn, pt.IfBind,
            pt.IfWeaken, pt.IfSay,
        ),
    )


def obligation_lambda(
    grant: Proposition,
    input_props: Sequence[Proposition],
    receipt_props: Sequence[Proposition],
    body: Callable[[PVar, list[PVar], list[PVar]], ProofTerm],
) -> ProofTerm:
    """λobl:(C ⊗ A ⊗ R). …, with C, the Aᵢ, and the receipts bound.

    ``body(grant_var, input_vars, receipt_vars)`` must prove the outputs
    tensor (or an if(φ, outputs) for conditional transactions).
    """
    a_prop = tensor_all(list(input_props))
    r_prop = tensor_all(list(receipt_props))
    obligation = Tensor(grant, Tensor(a_prop, r_prop))
    obl = fresh_name("obl")
    c_var = fresh_name("c")
    ar_var = fresh_name("ar")
    a_var = fresh_name("a")
    r_var = fresh_name("r")

    inner = decompose_tensor(
        PVar(a_var),
        len(input_props),
        lambda input_vars: decompose_tensor(
            PVar(r_var),
            len(receipt_props),
            lambda receipt_vars: body(PVar(c_var), input_vars, receipt_vars),
            prefix="r",
        ),
        prefix="i",
    )
    return LolliIntro(
        obl,
        obligation,
        TensorElim(
            c_var,
            ar_var,
            PVar(obl),
            TensorElim(a_var, r_var, PVar(ar_var), inner),
        ),
    )
