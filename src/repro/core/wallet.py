"""The Typecoin client: a principal's wallet plus ledger view.

"The Typecoin client itself can be viewed as a very small batch-mode
server, trusted by only one person" (§3.2) — it tracks the Typecoin
transactions its owner knows about, submits new ones to the Bitcoin
network, and assembles claim bundles for verifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitcoin.regtest import RegtestNetwork
from repro.bitcoin.transaction import OutPoint, Transaction
from repro.bitcoin.wallet import Wallet
from repro.core.overlay import EmbeddingStrategy, build_carrier
from repro.core.transaction import TypecoinInput, TypecoinTransaction
from repro.core.validate import (
    Ledger,
    ValidationFailure,
    check_typecoin_transaction,
    world_at,
)
from repro.core.verifier import ClaimBundle
from repro.crypto.keys import PrivateKey
from repro.lf.syntax import PrincipalLit
from repro.logic.checker import (
    affine_assert_payload,
    persistent_assert_payload,
)
from repro.logic.conditions import WorldView
from repro.logic.proofterms import (
    Affirmation,
    Assert,
    AssertPersistent,
)
from repro.logic.propositions import Proposition


class ClientError(Exception):
    """A client operation failed."""


@dataclass
class PendingSubmission:
    txn: TypecoinTransaction
    carrier: Transaction


class TypecoinClient:
    """A principal: keys, a Bitcoin wallet, and a Typecoin ledger view."""

    def __init__(self, net: RegtestNetwork, seed: bytes, ledger: Ledger | None = None):
        self.net = net
        self.wallet = Wallet.from_seed(seed, count=4)
        # Clients may share a ledger (a common view of verified history) or
        # keep their own; examples mostly share one for brevity.
        self.ledger = ledger if ledger is not None else Ledger()
        self.known: dict[bytes, TypecoinTransaction] = {}
        self.pending: dict[bytes, PendingSubmission] = {}

    # -- identity ---------------------------------------------------------

    @property
    def key(self) -> PrivateKey:
        return self.wallet.default_key

    @property
    def pubkey(self) -> bytes:
        return self.key.public.encoded

    @property
    def principal(self) -> bytes:
        return self.key.public.key_hash

    @property
    def principal_term(self) -> PrincipalLit:
        return PrincipalLit(self.principal)

    # -- affirmations ---------------------------------------------------------

    def affirm_persistent(self, prop: Proposition) -> AssertPersistent:
        """assert!(self, prop, sig): a transferable signed affirmation."""
        payload = persistent_assert_payload(prop)
        signature = self.key.sign(payload)
        return AssertPersistent(
            self.principal_term,
            prop,
            Affirmation(self.pubkey, signature.encode()),
        )

    def affirm_affine(
        self, prop: Proposition, txn_payload: bytes
    ) -> Assert:
        """assert(self, prop, sig): bound to one transaction (no replay)."""
        payload = affine_assert_payload(txn_payload, prop)
        signature = self.key.sign(payload)
        return Assert(
            self.principal_term,
            prop,
            Affirmation(self.pubkey, signature.encode()),
        )

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        txn: TypecoinTransaction,
        fee: int = 10_000,
        strategy: EmbeddingStrategy = EmbeddingStrategy.MULTISIG_1OF2,
        check_first: bool = True,
    ) -> Transaction:
        """Validate, wrap in a carrier, and broadcast a transaction.

        Returns the carrier; the Typecoin transaction is registered into
        this client's ledger once :meth:`sync` sees it confirmed.
        """
        if check_first:
            world = world_at(self.net.chain)
            try:
                check_typecoin_transaction(self.ledger, txn, world)
            except ValidationFailure as exc:
                raise ClientError(f"refusing to submit invalid txn: {exc}") from exc
        exclude = {
            OutPoint(inp.txid, inp.index)
            for pending in self.pending.values()
            for inp in pending.txn.inputs
        }
        for pending in self.pending.values():
            exclude.update(txin.prevout for txin in pending.carrier.vin)
        # Never burn a Typecoin-carrying txout as mere funding: "cracking a
        # resource open" (§3.1) must be deliberate, not coin selection.
        exclude.update(
            OutPoint(txid, index) for (txid, index) in self.ledger.outputs
        )
        carrier = build_carrier(
            self.net.chain, self.wallet, txn, fee=fee, strategy=strategy,
            exclude=exclude,
        )
        self.net.send(carrier)
        self.pending[carrier.txid] = PendingSubmission(txn, carrier)
        return carrier

    def sync(self) -> list[bytes]:
        """Register any pending submissions that have confirmed.

        Returns the carrier txids registered this call.
        """
        registered = []
        for carrier_txid in list(self.pending):
            if self.net.chain.confirmations(carrier_txid) < 1:
                continue
            submission = self.pending.pop(carrier_txid)
            if carrier_txid not in self.ledger.transactions:
                self.ledger.register(carrier_txid, submission.txn)
            self.known[carrier_txid] = submission.txn
            registered.append(carrier_txid)
        return registered

    # -- receiving ---------------------------------------------------------

    def learn(self, carrier_txid: bytes, txn: TypecoinTransaction) -> None:
        """Record a transaction another party sent us (already confirmed).

        The client re-validates before trusting it.
        """
        if carrier_txid in self.ledger.transactions:
            return
        found = self.net.chain.get_transaction(carrier_txid)
        if found is None:
            raise ClientError("carrier not confirmed")
        _, height = found
        check_typecoin_transaction(self.ledger, txn, world_at(self.net.chain, height))
        self.ledger.register(carrier_txid, txn)
        self.known[carrier_txid] = txn

    # -- claims ------------------------------------------------------------

    def claim_bundle(self, outpoint: OutPoint, prop: Proposition) -> ClaimBundle:
        """Assemble T_I plus the upstream set 𝔗 for a verifier (§3).

        "Upstream" covers both spent-output ancestry and the transactions
        whose bases declared the constants in play.
        """
        from repro.core.transaction import referenced_txids

        needed: dict[bytes, TypecoinTransaction] = {}
        frontier = [outpoint.txid]
        while frontier:
            txid = frontier.pop()
            if txid in needed:
                continue
            txn = self.known.get(txid) or self.ledger.transactions.get(txid)
            if txn is None:
                raise ClientError(
                    f"missing upstream transaction {txid[:8].hex()}…"
                )
            needed[txid] = txn
            frontier.extend(referenced_txids(txn))
        return ClaimBundle(outpoint=outpoint, prop=prop, transactions=needed)

    # -- typecoin inputs from ledger state -----------------------------------

    def input_for(self, outpoint: OutPoint) -> TypecoinInput:
        """Build the ι for spending a ledger-known output."""
        entry = self.ledger.output(outpoint.txid, outpoint.index)
        if entry is None:
            raise ClientError(f"unknown Typecoin output {outpoint}")
        return TypecoinInput(
            txid=outpoint.txid,
            index=outpoint.index,
            prop=entry.prop,
            amount=entry.amount,
        )
