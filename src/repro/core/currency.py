"""The newcoin currency of paper §6, with the §6.1 extensions.

The basis defines ``coin : nat → prop`` with merge/split rules gated on
``plus`` evidence, three ways to introduce money (a fixed supply, a private
printing press, and affirmation-triggered printing), the §6.1 independent
central banker whose printing power expires with their term, and the
bitcoins-for-newcoins offer whose redemption proof term is Figure 3 —
reproduced here constructor-for-constructor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lf.basis import (
    Basis,
    KindDecl,
    NAT_T,
    PLUS,
    PLUS_REFL,
    PRINCIPAL_T,
    PropDecl,
)
from repro.lf.syntax import (
    Const,
    ConstRef,
    KIND_PROP,
    KPi,
    NatLit,
    PrincipalLit,
    TConst,
    Term,
    Var,
    apply_family,
    apply_term,
)
from repro.logic.conditions import Before, CAnd, CNot, Condition, Spent
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Proposition,
    Receipt,
    Says,
    Tensor,
)
from repro.logic.proofterms import (
    ExistsIntro,
    ForallElim,
    IfBind,
    IfSay,
    IfWeaken,
    LolliElim,
    OneIntro,
    PConst,
    ProofTerm,
    PVar,
    SayBind,
    SayReturn,
    TensorIntro,
    let_,
)


@dataclass(frozen=True)
class NewcoinVocabulary:
    """The constant references of a published newcoin basis.

    Starts life with ``this`` references; :meth:`resolved` rebinds them to
    the publishing transaction's carrier txid.
    """

    coin: ConstRef
    merge: ConstRef
    split: ConstRef
    print_: ConstRef
    issue: ConstRef
    appoint: ConstRef
    is_banker: ConstRef
    confirm: ConstRef
    issue_term: ConstRef  # the §6.1 term-limited issue rule

    def resolved(self, txid: bytes) -> "NewcoinVocabulary":
        return NewcoinVocabulary(
            **{name: ref.resolved(txid) for name, ref in self.__dict__.items()}
        )

    # -- proposition builders --------------------------------------------

    def coin_prop(self, n: int | Term) -> Atom:
        index = NatLit(n) if isinstance(n, int) else n
        return Atom(apply_family(TConst(self.coin), index))

    def print_prop(self, n: int | Term) -> Atom:
        index = NatLit(n) if isinstance(n, int) else n
        return Atom(apply_family(TConst(self.print_), index))

    def appoint_prop(self, who: Term, until: int | Term) -> Atom:
        t = NatLit(until) if isinstance(until, int) else until
        return Atom(apply_family(TConst(self.appoint), who, t))

    def is_banker_prop(self, who: Term, until: int | Term) -> Atom:
        t = NatLit(until) if isinstance(until, int) else until
        return Atom(apply_family(TConst(self.is_banker), who, t))


def newcoin_basis(
    bank: PrincipalLit, president: PrincipalLit
) -> tuple[Basis, NewcoinVocabulary]:
    """The §6 basis (coin/merge/split, print/issue) plus §6.1 (banker).

    ``bank`` is the principal whose affirmations trigger the plain
    ``issue`` rule; ``president`` appoints term-limited bankers.
    """
    basis = Basis()
    coin = basis.declare_local("coin", KindDecl(KPi("n", NAT_T, KIND_PROP)))

    def coin_at(v: str) -> Atom:
        return Atom(apply_family(TConst(coin), Var(v)))

    def plus_evidence() -> Exists:
        return Exists(
            "x",
            apply_family(TConst(PLUS), Var("N"), Var("M"), Var("P")),
            One(),
        )

    merge = basis.declare_local(
        "merge",
        PropDecl(
            Forall("N", NAT_T, Forall("M", NAT_T, Forall("P", NAT_T,
                Lolli(
                    plus_evidence(),
                    Lolli(Tensor(coin_at("N"), coin_at("M")), coin_at("P")),
                ),
            )))
        ),
    )
    split = basis.declare_local(
        "split",
        PropDecl(
            Forall("N", NAT_T, Forall("M", NAT_T, Forall("P", NAT_T,
                Lolli(
                    plus_evidence(),
                    Lolli(coin_at("P"), Tensor(coin_at("N"), coin_at("M"))),
                ),
            )))
        ),
    )

    print_ = basis.declare_local("print", KindDecl(KPi("n", NAT_T, KIND_PROP)))

    def print_at(v: str) -> Atom:
        return Atom(apply_family(TConst(print_), Var(v)))

    issue = basis.declare_local(
        "issue",
        PropDecl(
            Forall("N", NAT_T, Lolli(Says(bank, print_at("N")), coin_at("N")))
        ),
    )

    # --- §6.1: the independent central banker -----------------------------
    appoint = basis.declare_local(
        "appoint",
        KindDecl(KPi("k", PRINCIPAL_T, KPi("t", NAT_T, KIND_PROP))),
    )
    is_banker = basis.declare_local(
        "is_banker",
        KindDecl(KPi("k", PRINCIPAL_T, KPi("t", NAT_T, KIND_PROP))),
    )

    def rel(ref: ConstRef, k: str, t: str) -> Atom:
        return Atom(apply_family(TConst(ref), Var(k), Var(t)))

    confirm = basis.declare_local(
        "confirm",
        PropDecl(
            Forall("K", PRINCIPAL_T, Forall("t", NAT_T,
                Lolli(
                    Says(president, rel(appoint, "K", "t")),
                    rel(is_banker, "K", "t"),
                ),
            ))
        ),
    )
    issue_term = basis.declare_local(
        "issue_term",
        PropDecl(
            Forall("K", PRINCIPAL_T, Forall("t", NAT_T, Forall("N", NAT_T,
                Lolli(
                    rel(is_banker, "K", "t"),
                    Lolli(
                        Says(Var("K"), print_at("N")),
                        IfProp(Before(Var("t")), coin_at("N")),
                    ),
                ),
            )))
        ),
    )

    vocab = NewcoinVocabulary(
        coin=coin,
        merge=merge,
        split=split,
        print_=print_,
        issue=issue,
        appoint=appoint,
        is_banker=is_banker,
        confirm=confirm,
        issue_term=issue_term,
    )
    return basis, vocab


def printing_press_grant(vocab: NewcoinVocabulary) -> Proposition:
    """The §6 affine grant giving the bank "the equivalent of a printing
    press": ∀n:nat. coin n.  (If this appeared in the basis instead,
    "anyone could print arbitrary amounts of money!")"""
    return Forall("n", NAT_T, vocab.coin_prop(Var("n")))


def whimsical_press_grant(vocab: NewcoinVocabulary) -> Proposition:
    """"More whimsically, the bank could simply give itself !(coin 1)."""
    return Bang(vocab.coin_prop(1))


def fixed_supply_grant(vocab: NewcoinVocabulary, supply: int) -> Proposition:
    """A fixed money supply: one big coin and no way to print more."""
    return vocab.coin_prop(supply)


# ----------------------------------------------------------------------
# Proof builders
# ----------------------------------------------------------------------


def plus_evidence_proof(n: int, m: int) -> ProofTerm:
    """A proof of ∃x:plus n m (n+m). 1 — "a somewhat unusual idiom: it has
    no interesting resource content, but serves to require that plus N M P
    is inhabited" (§6)."""
    annotation = Exists(
        "x",
        apply_family(TConst(PLUS), NatLit(n), NatLit(m), NatLit(n + m)),
        One(),
    )
    witness = apply_term(Const(PLUS_REFL), NatLit(n), NatLit(m))
    return ExistsIntro(annotation, witness, OneIntro())


def merge_proof(
    vocab: NewcoinVocabulary, n: int, m: int, left: ProofTerm, right: ProofTerm
) -> ProofTerm:
    """coin n ⊗ coin m ⟶ coin (n+m) via the merge rule."""
    rule = ForallElim(
        ForallElim(ForallElim(PConst(vocab.merge), NatLit(n)), NatLit(m)),
        NatLit(n + m),
    )
    return LolliElim(
        LolliElim(rule, plus_evidence_proof(n, m)),
        TensorIntro(left, right),
    )


def split_proof(
    vocab: NewcoinVocabulary, n: int, m: int, whole: ProofTerm
) -> ProofTerm:
    """coin (n+m) ⟶ coin n ⊗ coin m via the split rule."""
    rule = ForallElim(
        ForallElim(ForallElim(PConst(vocab.split), NatLit(n)), NatLit(m)),
        NatLit(n + m),
    )
    return LolliElim(LolliElim(rule, plus_evidence_proof(n, m)), whole)


def issue_proof(
    vocab: NewcoinVocabulary, n: int, print_affirmation: ProofTerm
) -> ProofTerm:
    """⟨Bank⟩print n ⟶ coin n: the bank "simply signs an affine
    affirmation and then immediately uses it to trigger the issue rule"."""
    return LolliElim(
        ForallElim(PConst(vocab.issue), NatLit(n)), print_affirmation
    )


def confirm_banker_proof(
    vocab: NewcoinVocabulary,
    banker: Term,
    term_end: int,
    appointment: ProofTerm,
) -> ProofTerm:
    """⟨President⟩appoint K t ⟶ is_banker K t."""
    rule = ForallElim(
        ForallElim(PConst(vocab.confirm), banker), NatLit(term_end)
    )
    return LolliElim(rule, appointment)


def banker_offer_prop(
    vocab: NewcoinVocabulary,
    deposit_address: PrincipalLit,
    n_btc: int,
    n_newcoins: int,
    revocation: Spent,
) -> Proposition:
    """The §6.1 published order: a receipt for n_btc sent to the bank's
    address D becomes a print order, revocable by spending R::

        receipt(n_btc ↠ D) ⊸ if(¬spent(R), print n_nc)
    """
    return Lolli(
        Receipt(One(), n_btc, deposit_address),
        IfProp(CNot(revocation), vocab.print_prop(n_newcoins)),
    )


def figure3_proof(
    vocab: NewcoinVocabulary,
    banker: Term,
    term_end: int,
    n_newcoins: int,
    revocation: Spent,
    receipt_var: str,
    order_var: str,
    banker_cred_var: str,
) -> ProofTerm:
    """The proof term of Figure 3, line for line.

    Given proof variables bound to r : receipt(n_btc ↠ D), p : ⟨Banker⟩(…
    offer …), and b : is_banker Banker T, produce
    if(¬spent(R) ∧ before(T), coin n_nc)::

        let x : ⟨Banker⟩if(¬spent(R), print N) ←
            (saybind f ← p in sayreturn(Banker, f r)) in
        let y : if(¬spent(R), ⟨Banker⟩print N) ← if/say(x) in
        ifbind z : ⟨Banker⟩print N ← ifweaken_{¬spent(R)∧before(T)}(y) in
        ifweaken_{¬spent(R)∧before(T)}(issue Banker T N b z)
    """
    not_spent: Condition = CNot(revocation)
    combined: Condition = CAnd(not_spent, Before(NatLit(term_end)))
    says_if = Says(banker, IfProp(not_spent, vocab.print_prop(n_newcoins)))
    if_says = IfProp(not_spent, Says(banker, vocab.print_prop(n_newcoins)))

    issue_rule = ForallElim(
        ForallElim(
            ForallElim(PConst(vocab.issue_term), banker), NatLit(term_end)
        ),
        NatLit(n_newcoins),
    )

    x_value = SayBind(
        "f",
        PVar(order_var),
        SayReturn(banker, LolliElim(PVar("f"), PVar(receipt_var))),
    )
    return let_(
        "x",
        says_if,
        x_value,
        let_(
            "y",
            if_says,
            IfSay(PVar("x")),
            IfBind(
                "z",
                IfWeaken(combined, PVar("y")),
                IfWeaken(
                    combined,
                    LolliElim(
                        LolliElim(issue_rule, PVar(banker_cred_var)),
                        PVar("z"),
                    ),
                ),
            ),
        ),
    )
