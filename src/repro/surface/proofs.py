"""Surface syntax for proof terms.

Completes the concrete language: bases, propositions, and conditions parse
already; this module adds the proof terms of Figure 1, in an ML-flavored
notation::

    fn x : coin 1 * coin 2.
      let a * b = x in (b * a)

    saybind f <- p in sayreturn[#aa…aa](f r)

    ifweaken[~spent(0x….0) /\\ before(100)](y)

Operator table:

==========================  ==========================================
surface                     proof term
==========================  ==========================================
``fn x : A. M``             λx:A.M (⊸ intro)
``tfn u : τ. M``            Λu:τ.M (∀ intro)
``M N``                     application (⊸ elim)
``M [m]``                   ∀ elim
``M * N``                   ⊗ intro
``let x * y = M in N``      ⊗ elim
``(M, N)``                  & intro
``fst M`` / ``snd M``       & elim
``inl[B] M`` / ``inr[A]``   ⊕ intro
``case M of inl x => N₁
| inr y => N₂``             ⊕ elim
``<>``                      1 intro
``let <> = M in N``         1 elim
``abort[C] M``              0 elim
``!M``                      ! intro
``let !x = M in N``         ! elim
``pack[∃u:τ.A](m, M)``      ∃ intro
``let (u, x) = unpack M
in N``                      ∃ elim
``sayreturn[m](M)``         affirmation unit
``saybind x <- M in N``     affirmation bind
``assert[K](A; pk; sig)``   affine affirmation (hex-blob key/signature)
``assertp[K](A; pk; sig)``  persistent affirmation
``ifreturn[φ](M)``          conditional unit
``ifbind x <- M in N``      conditional bind
``ifweaken[φ](M)``          conditional weakening
``ifsay(M)``                the if/say commutation
==========================  ==========================================
"""

from __future__ import annotations

from repro.logic import proofterms as pt
from repro.surface.lexer import TokenKind
from repro.surface.parser import ParseError, Parser, Resolver
from repro.surface.pretty import pretty_cond, pretty_family, pretty_prop, pretty_term


class ProofParser(Parser):
    """Extends the logic parser with proof terms."""

    def __init__(self, source: str, resolver: Resolver | None = None):
        super().__init__(source, resolver)
        self.proof_bound: list[str] = []

    # -- entry ------------------------------------------------------------

    def parse_proof(self) -> pt.ProofTerm:
        if self._accept(TokenKind.IDENT, "fn"):
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COLON)
            annotation = self.parse_prop()
            self._expect(TokenKind.DOT)
            body = self._in_proof_scope(var, self.parse_proof)
            return pt.LolliIntro(var, annotation, body)
        if self._accept(TokenKind.IDENT, "tfn"):
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COLON)
            domain = self.parse_family()
            self._expect(TokenKind.DOT)
            self.bound.append(var)
            try:
                body = self.parse_proof()
            finally:
                self.bound.pop()
            return pt.ForallIntro(var, domain, body)
        if self._accept(TokenKind.IDENT, "let"):
            return self._parse_let()
        if self._accept(TokenKind.IDENT, "case"):
            scrutinee = self.parse_proof()
            self._expect(TokenKind.IDENT, "of")
            self._expect(TokenKind.IDENT, "inl")
            left_var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.FATARROW)
            left_body = self._in_proof_scope(left_var, self.parse_proof)
            self._expect(TokenKind.PIPE)
            self._expect(TokenKind.IDENT, "inr")
            right_var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.FATARROW)
            right_body = self._in_proof_scope(right_var, self.parse_proof)
            return pt.PlusCase(scrutinee, left_var, left_body, right_var, right_body)
        if self._accept(TokenKind.IDENT, "saybind"):
            return self._parse_bind(pt.SayBind)
        if self._accept(TokenKind.IDENT, "ifbind"):
            return self._parse_bind(pt.IfBind)
        return self._parse_tensor_level()

    def _in_proof_scope(self, var: str, thunk):
        self.proof_bound.append(var)
        try:
            return thunk()
        finally:
            self.proof_bound.pop()

    def _parse_bind(self, ctor):
        var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LARROW)
        scrutinee = self.parse_proof()
        self._expect(TokenKind.IDENT, "in")
        body = self._in_proof_scope(var, self.parse_proof)
        return ctor(var, scrutinee, body)

    def _parse_let(self) -> pt.ProofTerm:
        if self._accept(TokenKind.DIAMOND):
            self._expect(TokenKind.EQUALS)
            scrutinee = self.parse_proof()
            self._expect(TokenKind.IDENT, "in")
            return pt.OneElim(scrutinee, self.parse_proof())
        if self._accept(TokenKind.BANG):
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.EQUALS)
            scrutinee = self.parse_proof()
            self._expect(TokenKind.IDENT, "in")
            body = self._in_proof_scope(var, self.parse_proof)
            return pt.BangElim(var, scrutinee, body)
        if self._accept(TokenKind.LPAREN):
            type_var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COMMA)
            proof_var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.EQUALS)
            self._expect(TokenKind.IDENT, "unpack")
            scrutinee = self.parse_proof()
            self._expect(TokenKind.IDENT, "in")
            self.bound.append(type_var)
            try:
                body = self._in_proof_scope(proof_var, self.parse_proof)
            finally:
                self.bound.pop()
            return pt.ExistsElim(type_var, proof_var, scrutinee, body)
        left_var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.STAR)
        right_var = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.EQUALS)
        scrutinee = self.parse_proof()
        self._expect(TokenKind.IDENT, "in")
        self.proof_bound.extend((left_var, right_var))
        try:
            body = self.parse_proof()
        finally:
            del self.proof_bound[-2:]
        return pt.TensorElim(left_var, right_var, scrutinee, body)

    # -- tensor / application levels -----------------------------------------

    def _parse_tensor_level(self) -> pt.ProofTerm:
        term = self._parse_app_level()
        while self._accept(TokenKind.STAR):
            term = pt.TensorIntro(term, self._parse_app_level())
        return term

    def _parse_app_level(self) -> pt.ProofTerm:
        term = self._parse_proof_atom()
        while True:
            if self._accept(TokenKind.LBRACKET):
                arg = self.parse_term()
                self._expect(TokenKind.RBRACKET)
                term = pt.ForallElim(term, arg)
            elif self._at_proof_atom():
                term = pt.LolliElim(term, self._parse_proof_atom())
            else:
                return term

    def _at_proof_atom(self) -> bool:
        if self._check(TokenKind.DIAMOND) or self._check(TokenKind.BANG):
            return True
        if self._check(TokenKind.LPAREN):
            return True
        if self._check(TokenKind.IDENT):
            text = self.current.text
            if text in ("fst", "snd", "inl", "inr", "abort", "pack",
                        "sayreturn", "ifreturn", "ifweaken", "ifsay",
                        "assert", "assertp"):
                return True
            if self.current.is_keyword:
                return False
            return (
                text in self.proof_bound
                or text in self.resolver.props
            )
        if self._check(TokenKind.IDENT, "this") or self._check(TokenKind.HEXBLOB):
            return True
        return False

    def _parse_proof_atom(self) -> pt.ProofTerm:
        if self._accept(TokenKind.DIAMOND):
            return pt.OneIntro()
        if self._accept(TokenKind.BANG):
            return pt.BangIntro(self._parse_proof_atom())
        if self._accept(TokenKind.IDENT, "fst"):
            return pt.WithFst(self._parse_proof_atom())
        if self._accept(TokenKind.IDENT, "snd"):
            return pt.WithSnd(self._parse_proof_atom())
        if self._accept(TokenKind.IDENT, "inl"):
            other = self._bracketed_prop()
            return pt.PlusInl(other, self._parse_proof_atom())
        if self._accept(TokenKind.IDENT, "inr"):
            other = self._bracketed_prop()
            return pt.PlusInr(other, self._parse_proof_atom())
        if self._accept(TokenKind.IDENT, "abort"):
            annotation = self._bracketed_prop()
            return pt.ZeroElim(self._parse_proof_atom(), annotation)
        if self._accept(TokenKind.IDENT, "pack"):
            annotation = self._bracketed_prop()
            self._expect(TokenKind.LPAREN)
            witness = self.parse_term()
            self._expect(TokenKind.COMMA)
            body = self.parse_proof()
            self._expect(TokenKind.RPAREN)
            return pt.ExistsIntro(annotation, witness, body)
        if self._accept(TokenKind.IDENT, "sayreturn"):
            self._expect(TokenKind.LBRACKET)
            principal = self.parse_term()
            self._expect(TokenKind.RBRACKET)
            return pt.SayReturn(principal, self._parenthesized_proof())
        if self._accept(TokenKind.IDENT, "ifreturn"):
            self._expect(TokenKind.LBRACKET)
            condition = self.parse_cond()
            self._expect(TokenKind.RBRACKET)
            return pt.IfReturn(condition, self._parenthesized_proof())
        if self._accept(TokenKind.IDENT, "ifweaken"):
            self._expect(TokenKind.LBRACKET)
            condition = self.parse_cond()
            self._expect(TokenKind.RBRACKET)
            return pt.IfWeaken(condition, self._parenthesized_proof())
        if self._accept(TokenKind.IDENT, "ifsay"):
            return pt.IfSay(self._parenthesized_proof())
        if self._check(TokenKind.IDENT, "assert") or self._check(
            TokenKind.IDENT, "assertp"
        ):
            persistent = self._advance().text == "assertp"
            self._expect(TokenKind.LBRACKET)
            principal = self.parse_term()
            self._expect(TokenKind.RBRACKET)
            self._expect(TokenKind.LPAREN)
            prop = self.parse_prop()
            self._expect(TokenKind.SEMI)
            pubkey = bytes.fromhex(self._expect(TokenKind.HEXBLOB).text)
            self._expect(TokenKind.SEMI)
            signature = bytes.fromhex(self._expect(TokenKind.HEXBLOB).text)
            self._expect(TokenKind.RPAREN)
            ctor = pt.AssertPersistent if persistent else pt.Assert
            return ctor(principal, prop, pt.Affirmation(pubkey, signature))
        if self._accept(TokenKind.LPAREN):
            first = self.parse_proof()
            if self._accept(TokenKind.COMMA):
                second = self.parse_proof()
                self._expect(TokenKind.RPAREN)
                return pt.WithIntro(first, second)
            self._expect(TokenKind.RPAREN)
            return first
        qualified = self._qualified()
        if qualified is not None:
            return pt.PConst(qualified)
        if self._check(TokenKind.IDENT) and not self.current.is_keyword:
            name = self._advance().text
            if name in self.proof_bound:
                return pt.PVar(name)
            ref = self.resolver.props.get(name)
            if ref is not None:
                return pt.PConst(ref)
            raise self._fail(f"unknown proof identifier {name!r}")
        raise self._fail("expected a proof term")

    def _bracketed_prop(self):
        self._expect(TokenKind.LBRACKET)
        prop = self.parse_prop()
        self._expect(TokenKind.RBRACKET)
        return prop

    def _parenthesized_proof(self) -> pt.ProofTerm:
        self._expect(TokenKind.LPAREN)
        proof = self.parse_proof()
        self._expect(TokenKind.RPAREN)
        return proof


def parse_proof(source: str, resolver: Resolver | None = None) -> pt.ProofTerm:
    parser = ProofParser(source, resolver)
    proof = parser.parse_proof()
    parser._expect_eof()
    return proof


# ----------------------------------------------------------------------
# Pretty printing
# ----------------------------------------------------------------------


class _Names:
    """Collision-free printable names for binders (fresh suffixes like
    ``obl$3`` print as ``obl``, renamed on clashes)."""

    def __init__(self):
        self.scope: dict[str, str] = {}
        self.used: set[str] = set()

    def bind(self, original: str) -> str:
        base = original.split("$", 1)[0] or "x"
        candidate = base
        counter = 1
        while candidate in self.used:
            counter += 1
            candidate = f"{base}_{counter}"
        self.used.add(candidate)
        self.scope[original] = candidate
        return candidate

    def lookup(self, original: str) -> str:
        return self.scope.get(original, original.split("$", 1)[0] or original)


def pretty_proof(term: pt.ProofTerm, _names: _Names | None = None) -> str:
    """Render a proof term in the surface notation (parseable)."""
    names = _names if _names is not None else _Names()
    return _pp(term, names, atomic=False)


def _pp(term: pt.ProofTerm, names: _Names, atomic: bool) -> str:
    def paren(text: str) -> str:
        return f"({text})" if atomic else text

    if isinstance(term, pt.PVar):
        return names.lookup(term.name)
    if isinstance(term, pt.PConst):
        from repro.surface.pretty import pretty_ref

        return pretty_ref(term.ref)
    if isinstance(term, pt.LolliIntro):
        var = names.bind(term.var)
        return paren(
            f"fn {var} : {pretty_prop(term.annotation)}."
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.ForallIntro):
        # LF binders print by their cleaned name (occurrences inside
        # propositions/terms are printed by pretty_prop, outside this
        # renamer's reach).
        var = term.var.split("$", 1)[0]
        return paren(
            f"tfn {var} : {pretty_family(term.domain)}."
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.LolliElim):
        func = _pp(term.func, names, atomic=not isinstance(
            term.func, (pt.LolliElim, pt.ForallElim)
        ))
        return paren(f"{func} {_pp(term.arg, names, True)}")
    if isinstance(term, pt.ForallElim):
        body = _pp(term.body, names, atomic=not isinstance(
            term.body, (pt.LolliElim, pt.ForallElim)
        ))
        return paren(f"{body} [{pretty_term(term.arg)}]")
    if isinstance(term, pt.TensorIntro):
        return paren(
            f"{_pp(term.left, names, True)} * {_pp(term.right, names, True)}"
        )
    if isinstance(term, pt.TensorElim):
        scrutinee = _pp(term.scrutinee, names, False)
        left = names.bind(term.left_var)
        right = names.bind(term.right_var)
        return paren(
            f"let {left} * {right} = {scrutinee} in"
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.WithIntro):
        return (
            f"({_pp(term.left, names, False)},"
            f" {_pp(term.right, names, False)})"
        )
    if isinstance(term, pt.WithFst):
        return paren(f"fst {_pp(term.body, names, True)}")
    if isinstance(term, pt.WithSnd):
        return paren(f"snd {_pp(term.body, names, True)}")
    if isinstance(term, pt.PlusInl):
        return paren(
            f"inl[{pretty_prop(term.other)}] {_pp(term.body, names, True)}"
        )
    if isinstance(term, pt.PlusInr):
        return paren(
            f"inr[{pretty_prop(term.other)}] {_pp(term.body, names, True)}"
        )
    if isinstance(term, pt.PlusCase):
        scrutinee = _pp(term.scrutinee, names, False)
        left_var = names.bind(term.left_var)
        left = _pp(term.left_body, names, False)
        right_var = names.bind(term.right_var)
        right = _pp(term.right_body, names, False)
        return paren(
            f"case {scrutinee} of inl {left_var} => {left}"
            f" | inr {right_var} => {right}"
        )
    if isinstance(term, pt.OneIntro):
        return "<>"
    if isinstance(term, pt.OneElim):
        return paren(
            f"let <> = {_pp(term.scrutinee, names, False)} in"
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.ZeroElim):
        return paren(
            f"abort[{pretty_prop(term.annotation)}]"
            f" {_pp(term.scrutinee, names, True)}"
        )
    if isinstance(term, pt.BangIntro):
        return paren(f"!{_pp(term.body, names, True)}")
    if isinstance(term, pt.BangElim):
        var = names.bind(term.var)
        return paren(
            f"let !{var} = {_pp(term.scrutinee, names, False)} in"
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.ExistsIntro):
        return paren(
            f"pack[{pretty_prop(term.annotation)}]"
            f"({pretty_term(term.witness)}, {_pp(term.body, names, False)})"
        )
    if isinstance(term, pt.ExistsElim):
        scrutinee = _pp(term.scrutinee, names, False)
        proof_var = names.bind(term.proof_var)
        type_var = term.type_var.split("$", 1)[0]
        return paren(
            f"let ({type_var}, {proof_var}) = unpack {scrutinee} in"
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.SayReturn):
        return (
            f"sayreturn[{pretty_term(term.principal)}]"
            f"({_pp(term.body, names, False)})"
        )
    if isinstance(term, pt.SayBind):
        var = names.bind(term.var)
        return paren(
            f"saybind {var} <- {_pp(term.scrutinee, names, False)} in"
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, (pt.Assert, pt.AssertPersistent)):
        keyword = "assert" if isinstance(term, pt.Assert) else "assertp"
        aff = term.affirmation
        return (
            f"{keyword}[{pretty_term(term.principal)}]"
            f"({pretty_prop(term.prop)};"
            f" 0x{aff.pubkey.hex()}; 0x{aff.signature.hex()})"
        )
    if isinstance(term, pt.IfReturn):
        return (
            f"ifreturn[{pretty_cond(term.condition)}]"
            f"({_pp(term.body, names, False)})"
        )
    if isinstance(term, pt.IfBind):
        var = names.bind(term.var)
        return paren(
            f"ifbind {var} <- {_pp(term.scrutinee, names, False)} in"
            f" {_pp(term.body, names, False)}"
        )
    if isinstance(term, pt.IfWeaken):
        return (
            f"ifweaken[{pretty_cond(term.condition)}]"
            f"({_pp(term.body, names, False)})"
        )
    if isinstance(term, pt.IfSay):
        return f"ifsay({_pp(term.body, names, False)})"
    raise TypeError(f"not a proof term: {term!r}")
