"""Pretty printer: logic syntax back to parseable surface text.

The invariant the test suite enforces: ``parse(pretty(x))`` is α-equivalent
to ``x`` for every syntactic class.  Printing is precedence-aware, inserting
parentheses only where the grammar demands them.
"""

from __future__ import annotations

from repro.lf.basis import ADD, NAT, PLUS, PLUS_REFL, PRINCIPAL
from repro.lf.syntax import (
    App,
    BUILTIN,
    Const,
    ConstRef,
    Kind,
    KindSort,
    KindT,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    THIS,
    TPi,
    Term,
    TypeFamily,
    Var,
    free_vars,
)
from repro.logic.conditions import Before, CAnd, CNot, Condition, CTrue, Spent
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)

_BUILTIN_NAMES = {NAT: "nat", PRINCIPAL: "principal", PLUS: "plus",
                  ADD: "add", PLUS_REFL: "plus_refl"}


def pretty_ref(ref: ConstRef) -> str:
    if ref.space is BUILTIN:
        return _BUILTIN_NAMES.get(ref, ref.name)
    if ref.space is THIS:
        return f"this.{ref.name}"
    return f"0x{ref.space.hex()}.{ref.name}"


def _clean(var: str) -> str:
    """Strip freshness suffixes ($N) for printing; parsers re-unique them."""
    return var.split("$", 1)[0] or "_"


# -- kinds ------------------------------------------------------------


def pretty_kind(kind: KindT) -> str:
    if isinstance(kind, Kind):
        return "type" if kind.sort is KindSort.TYPE else "prop"
    if isinstance(kind, KPi):
        return (
            f"pi {_clean(kind.var)}:{pretty_family(kind.domain)}."
            f" {pretty_kind(kind.body)}"
        )
    raise TypeError(f"not a kind: {kind!r}")


# -- families ----------------------------------------------------------


def pretty_family(family: TypeFamily, atomic: bool = False) -> str:
    if isinstance(family, TConst):
        return pretty_ref(family.ref)
    if isinstance(family, TApp):
        text = (
            f"{pretty_family(family.family, atomic=False)}"
            f" {pretty_term(family.arg, atomic=True)}"
        )
        # Application heads must themselves be applications or atoms.
        if isinstance(family.family, TPi):
            raise TypeError("family application head cannot be a Π type")
        return f"({text})" if atomic else text
    if isinstance(family, TPi):
        if family.var in free_vars(family.body):
            text = (
                f"pi {_clean(family.var)}:{pretty_family(family.domain)}."
                f" {pretty_family(family.body)}"
            )
        else:
            text = (
                f"{pretty_family(family.domain, atomic=True)} ->"
                f" {pretty_family(family.body)}"
            )
        return f"({text})" if atomic else text
    raise TypeError(f"not a family: {family!r}")


# -- terms ---------------------------------------------------------------


def pretty_term(term: Term, atomic: bool = False) -> str:
    if isinstance(term, Var):
        return _clean(term.name)
    if isinstance(term, Const):
        return pretty_ref(term.ref)
    if isinstance(term, NatLit):
        return str(term.value)
    if isinstance(term, PrincipalLit):
        return f"#{term.key_hash.hex()}"
    if isinstance(term, Lam):
        text = (
            f"\\{_clean(term.var)}:{pretty_family(term.domain)}."
            f" {pretty_term(term.body)}"
        )
        return f"({text})" if atomic else text
    if isinstance(term, App):
        text = (
            f"{pretty_term(term.func, atomic=isinstance(term.func, Lam))}"
            f" {pretty_term(term.arg, atomic=True)}"
        )
        return f"({text})" if atomic else text
    raise TypeError(f"not a term: {term!r}")


# -- conditions --------------------------------------------------------------


def pretty_cond(cond: Condition, atomic: bool = False) -> str:
    if isinstance(cond, CTrue):
        return "true"
    if isinstance(cond, CAnd):
        text = (
            f"{pretty_cond(cond.left, atomic=True)} /\\"
            f" {pretty_cond(cond.right, atomic=True)}"
        )
        return f"({text})" if atomic else text
    if isinstance(cond, CNot):
        return f"~{pretty_cond(cond.body, atomic=True)}"
    if isinstance(cond, Before):
        return f"before({pretty_term(cond.time)})"
    if isinstance(cond, Spent):
        return f"spent(0x{cond.txid.hex()}.{cond.index})"
    raise TypeError(f"not a condition: {cond!r}")


# -- propositions --------------------------------------------------------------

# Precedence levels: 0 lolli, 1 plus, 2 with, 3 tensor, 4 prefix/atom.
_LOLLI, _PLUS, _WITH, _TENSOR, _PREFIX = range(5)


def pretty_prop(prop: Proposition, level: int = _LOLLI) -> str:
    text, prec = _render(prop)
    if prec < level:
        return f"({text})"
    return text


def _render(prop: Proposition) -> tuple[str, int]:
    if isinstance(prop, Lolli):
        left = pretty_prop(prop.antecedent, _PLUS)
        right = pretty_prop(prop.consequent, _LOLLI)
        return f"{left} -o {right}", _LOLLI
    if isinstance(prop, Plus):
        left = pretty_prop(prop.left, _PLUS)
        right = pretty_prop(prop.right, _WITH)
        return f"{left} + {right}", _PLUS
    if isinstance(prop, With):
        left = pretty_prop(prop.left, _WITH)
        right = pretty_prop(prop.right, _TENSOR)
        return f"{left} & {right}", _WITH
    if isinstance(prop, Tensor):
        left = pretty_prop(prop.left, _TENSOR)
        right = pretty_prop(prop.right, _PREFIX)
        return f"{left} * {right}", _TENSOR
    if isinstance(prop, Bang):
        return f"!{pretty_prop(prop.body, _PREFIX)}", _PREFIX
    if isinstance(prop, Says):
        principal = pretty_term(prop.principal)
        return f"[{principal}] {pretty_prop(prop.body, _PREFIX)}", _PREFIX
    if isinstance(prop, (Forall, Exists)):
        keyword = "forall" if isinstance(prop, Forall) else "exists"
        text = (
            f"{keyword} {_clean(prop.var)}:{pretty_family(prop.domain)}."
            f" {pretty_prop(prop.body, _LOLLI)}"
        )
        # Quantifiers swallow everything rightward; parenthesize when nested.
        return text, _LOLLI
    if isinstance(prop, IfProp):
        return (
            f"if({pretty_cond(prop.condition)}, {pretty_prop(prop.body)})",
            _PREFIX,
        )
    if isinstance(prop, Receipt):
        recipient = pretty_term(prop.recipient)
        if isinstance(prop.prop, One):
            if prop.amount:
                # Pure bitcoin receipt: receipt(n ↠ K).
                return f"receipt({prop.amount} ->> {recipient})", _PREFIX
            # Bare "1" would re-parse as an amount; write 1/0 explicitly.
            return f"receipt(1/0 ->> {recipient})", _PREFIX
        body = pretty_prop(prop.prop)
        if prop.amount:
            return f"receipt({body}/{prop.amount} ->> {recipient})", _PREFIX
        if isinstance(prop.prop, Zero):
            # Bare "0" would re-parse as an amount; write 0/0 explicitly.
            return f"receipt(0/0 ->> {recipient})", _PREFIX
        return f"receipt({body} ->> {recipient})", _PREFIX
    if isinstance(prop, Zero):
        return "0", _PREFIX
    if isinstance(prop, One):
        return "1", _PREFIX
    if isinstance(prop, Atom):
        return _render_atom(prop.family), _PREFIX
    raise TypeError(f"not a proposition: {prop!r}")


def _render_atom(family: TypeFamily) -> str:
    if isinstance(family, TConst):
        return pretty_ref(family.ref)
    if isinstance(family, TApp):
        return f"{_render_atom(family.family)} {pretty_term(family.arg, atomic=True)}"
    raise TypeError(f"atomic proposition with non-applicative family: {family!r}")
