"""Tokenizer for the Typecoin surface syntax.

Hand-rolled maximal-munch lexer with source positions for error messages.
Comments run from ``#`` to end of line — except that ``#`` immediately
followed by 40 hex digits is a principal literal (key hashes are rendered
``#a1b2…``), so principal literals lex before comments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LexError(Exception):
    """Raised on unrecognized input, with line/column context."""


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    PRINCIPAL = "principal"
    HEXBLOB = "hexblob"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    DOT = "."
    COMMA = ","
    COLON = ":"
    SLASH = "/"
    LOLLI = "-o"
    ARROW = "->"
    SENDS = "->>"
    STAR = "*"
    AMP = "&"
    PLUS = "+"
    BANG = "!"
    TILDE = "~"
    WEDGE = "/\\"
    BACKSLASH = "\\"
    EQUALS = "="
    FATARROW = "=>"
    LARROW = "<-"
    DIAMOND = "<>"
    SEMI = ";"
    PIPE = "|"
    EOF = "eof"


KEYWORDS = frozenset({
    "forall", "exists", "if", "receipt", "before", "spent", "true",
    "pi", "type", "prop", "this", "family", "term", "rule",
    # proof-term keywords
    "fn", "tfn", "let", "in", "unpack", "case", "of", "inl", "inr",
    "fst", "snd", "abort", "pack", "sayreturn", "saybind", "assert",
    "assertp", "ifreturn", "ifbind", "ifweaken", "ifsay",
})


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def is_keyword(self) -> bool:
        return self.kind is TokenKind.IDENT and self.text in KEYWORDS


_SIMPLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ".": TokenKind.DOT,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "*": TokenKind.STAR,
    "&": TokenKind.AMP,
    "+": TokenKind.PLUS,
    "!": TokenKind.BANG,
    "~": TokenKind.TILDE,
    "\\": TokenKind.BACKSLASH,
    "=": TokenKind.EQUALS,
    ";": TokenKind.SEMI,
    "|": TokenKind.PIPE,
}

_HEX = set("0123456789abcdefABCDEF")


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_'"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into a token list ending with EOF."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0

    def here() -> tuple[int, int]:
        return line, i - line_start + 1

    while i < len(source):
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        ln, col = here()
        if ch == "#":
            # Principal literal (#<40 hex>) or comment.
            run = 0
            while i + 1 + run < len(source) and source[i + 1 + run] in _HEX:
                run += 1
            if run >= 40:
                text = source[i + 1 : i + 41]
                tokens.append(Token(TokenKind.PRINCIPAL, text.lower(), ln, col))
                i += 41
                continue
            while i < len(source) and source[i] != "\n":
                i += 1
            continue
        if source.startswith("->>", i):
            tokens.append(Token(TokenKind.SENDS, "->>", ln, col))
            i += 3
            continue
        if source.startswith("->", i):
            tokens.append(Token(TokenKind.ARROW, "->", ln, col))
            i += 2
            continue
        if source.startswith("-o", i):
            tokens.append(Token(TokenKind.LOLLI, "-o", ln, col))
            i += 2
            continue
        if source.startswith("/\\", i):
            tokens.append(Token(TokenKind.WEDGE, "/\\", ln, col))
            i += 2
            continue
        if source.startswith("=>", i):
            tokens.append(Token(TokenKind.FATARROW, "=>", ln, col))
            i += 2
            continue
        if source.startswith("<-", i):
            tokens.append(Token(TokenKind.LARROW, "<-", ln, col))
            i += 2
            continue
        if source.startswith("<>", i):
            tokens.append(Token(TokenKind.DIAMOND, "<>", ln, col))
            i += 2
            continue
        if ch == "/":
            tokens.append(Token(TokenKind.SLASH, "/", ln, col))
            i += 1
            continue
        if ch == "0" and source.startswith("0x", i):
            j = i + 2
            while j < len(source) and source[j] in _HEX:
                j += 1
            if j == i + 2:
                raise LexError(f"empty hex blob at line {ln}, column {col}")
            tokens.append(Token(TokenKind.HEXBLOB, source[i + 2 : j].lower(), ln, col))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < len(source) and source[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.NUMBER, source[i:j], ln, col))
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < len(source) and _is_ident_char(source[j]):
                j += 1
            tokens.append(Token(TokenKind.IDENT, source[i:j], ln, col))
            i = j
            continue
        if ch in _SIMPLE:
            tokens.append(Token(_SIMPLE[ch], ch, ln, col))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at line {ln}, column {col}")

    tokens.append(Token(TokenKind.EOF, "", line, len(source) - line_start + 1))
    return tokens
