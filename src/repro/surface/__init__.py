"""A human-writable surface syntax for the Typecoin logic.

The paper presents the logic mathematically (Figure 1); any usable client
needs a concrete syntax for writing bases, propositions, and conditions.
This package provides a lexer, a recursive-descent parser, and a pretty
printer that round-trip::

    coin : pi n:nat. prop
    merge : forall N:nat. forall M:nat. forall P:nat.
            (exists x:plus N M P. 1) -o coin N * coin M -o coin P

ASCII operator table (with the paper's notation):

=========  ==============  =========================
surface    paper           meaning
=========  ==============  =========================
``-o``     ⊸               affine implication
``*``      ⊗               simultaneous conjunction
``&``      &               external choice
``+``      ⊕               internal choice
``!``      !               exponential
``[m] A``  ⟨m⟩A            affirmation
``->>``    ↠               receipt direction
``/\\``    ∧               condition conjunction
``~``      ¬               condition negation
=========  ==============  =========================
"""

from repro.surface.lexer import LexError, Token, TokenKind, tokenize
from repro.surface.parser import (
    ParseError,
    Parser,
    Resolver,
    parse_basis_text,
    parse_cond,
    parse_family,
    parse_kind,
    parse_prop,
    parse_term,
)
from repro.surface.pretty import (
    pretty_cond,
    pretty_family,
    pretty_kind,
    pretty_prop,
    pretty_term,
)
from repro.surface.proofs import ProofParser, parse_proof, pretty_proof

__all__ = [
    "LexError",
    "Token",
    "TokenKind",
    "tokenize",
    "ParseError",
    "Parser",
    "Resolver",
    "parse_basis_text",
    "parse_cond",
    "parse_family",
    "parse_kind",
    "parse_prop",
    "parse_term",
    "ProofParser",
    "parse_proof",
    "pretty_proof",
    "pretty_cond",
    "pretty_family",
    "pretty_kind",
    "pretty_prop",
    "pretty_term",
]
