"""Recursive-descent parser for the Typecoin surface syntax.

Precedence (loosest to tightest): ``-o`` (right-associative), ``+``, ``&``,
``*`` (all left-associative), then the prefix forms (``!``, ``[m]``,
quantifiers, ``if``, ``receipt``), then atoms.  Quantifier bodies extend as
far right as possible, as in the paper.

Names resolve through a :class:`Resolver`: bare identifiers look up local
(``this.x``) or imported constants; ``this.x`` and ``0x<txid>.x`` are always
available in qualified form; ``time`` aliases ``nat`` (paper fn. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lf.basis import (
    ADD,
    Basis,
    KindDecl,
    NAT,
    PLUS,
    PLUS_REFL,
    PRINCIPAL,
    PropDecl,
    TypeDecl,
)
from repro.lf.syntax import (
    App,
    Const,
    ConstRef,
    KIND_PROP,
    KIND_TYPE,
    KindT,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    THIS,
    TPi,
    Term,
    TypeFamily,
    Var,
    fresh_name,
)
from repro.logic.conditions import (
    Before,
    CAnd,
    CNot,
    Condition,
    CTrue,
    Spent,
)
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)
from repro.surface.lexer import Token, TokenKind, tokenize


class ParseError(Exception):
    """Raised on syntax or resolution errors, with position context."""


_BUILTIN_FAMILIES = {
    "nat": NAT,
    "time": NAT,  # "The type time is actually just nat" (paper fn. 10)
    "principal": PRINCIPAL,
    "plus": PLUS,
}

_BUILTIN_TERMS = {
    "add": ADD,
    "plus_refl": PLUS_REFL,
}


@dataclass
class Resolver:
    """Maps bare identifiers to fully-qualified constant references."""

    families: dict[str, ConstRef] = field(default_factory=dict)
    terms: dict[str, ConstRef] = field(default_factory=dict)
    props: dict[str, ConstRef] = field(default_factory=dict)

    def family(self, name: str) -> ConstRef | None:
        return self.families.get(name) or _BUILTIN_FAMILIES.get(name)

    def term(self, name: str) -> ConstRef | None:
        return self.terms.get(name) or _BUILTIN_TERMS.get(name)


class Parser:
    """One-token-lookahead recursive descent over the token list."""

    def __init__(self, source: str, resolver: Resolver | None = None):
        self.tokens = tokenize(source)
        self.pos = 0
        self.resolver = resolver or Resolver()
        self.bound: list[str] = []

    # -- token plumbing -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        token = self.current
        return token.kind is kind and (text is None or token.text == text)

    def _accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            want = text or kind.value
            got = self.current.text or self.current.kind.value
            raise ParseError(
                f"expected {want!r}, got {got!r} at line {self.current.line},"
                f" column {self.current.column}"
            )
        return token

    def _expect_eof(self) -> None:
        self._expect(TokenKind.EOF)

    def _fail(self, message: str) -> ParseError:
        return ParseError(
            f"{message} at line {self.current.line}, column"
            f" {self.current.column}"
        )

    # -- qualified names ------------------------------------------------

    def _qualified(self) -> ConstRef | None:
        """``this.x`` or ``0x<txid>.x`` — None if not at a qualifier."""
        if self._check(TokenKind.IDENT, "this"):
            self._advance()
            self._expect(TokenKind.DOT)
            name = self._expect(TokenKind.IDENT)
            return ConstRef(THIS, name.text)
        if self._check(TokenKind.HEXBLOB):
            blob = self._advance()
            if len(blob.text) != 64:
                raise self._fail("transaction ids are 32 bytes (64 hex digits)")
            self._expect(TokenKind.DOT)
            name = self._expect(TokenKind.IDENT)
            return ConstRef(bytes.fromhex(blob.text), name.text)
        return None

    # -- kinds ------------------------------------------------------------

    def parse_kind(self) -> KindT:
        if self._accept(TokenKind.IDENT, "type"):
            return KIND_TYPE
        if self._accept(TokenKind.IDENT, "prop"):
            return KIND_PROP
        if self._accept(TokenKind.IDENT, "pi"):
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COLON)
            domain = self.parse_family()
            self._expect(TokenKind.DOT)
            body = self.parse_kind()
            return KPi(var, domain, body)
        raise self._fail("expected a kind (type, prop, or pi)")

    # -- type families ----------------------------------------------------

    def parse_family(self) -> TypeFamily:
        if self._accept(TokenKind.IDENT, "pi"):
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COLON)
            domain = self.parse_family()
            self._expect(TokenKind.DOT)
            self.bound.append(var)
            try:
                body = self.parse_family()
            finally:
                self.bound.pop()
            return TPi(var, domain, body)
        head = self._family_app()
        if self._accept(TokenKind.ARROW):
            body = self.parse_family()
            return TPi(fresh_name("_"), head, body)
        return head

    def _family_app(self) -> TypeFamily:
        family = self._family_atom()
        while self._at_term_atom():
            family = TApp(family, self._term_atom())
        return family

    def _family_atom(self) -> TypeFamily:
        qualified = self._qualified()
        if qualified is not None:
            return TConst(qualified)
        if self._check(TokenKind.IDENT) and not self.current.is_keyword:
            name = self.current.text
            ref = self.resolver.family(name)
            if ref is None:
                raise self._fail(f"unknown type family {name!r}")
            self._advance()
            return TConst(ref)
        if self._accept(TokenKind.LPAREN):
            family = self.parse_family()
            self._expect(TokenKind.RPAREN)
            return family
        raise self._fail("expected a type family")

    # -- index terms --------------------------------------------------------

    def parse_term(self) -> Term:
        if self._accept(TokenKind.BACKSLASH):
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COLON)
            domain = self.parse_family()
            self._expect(TokenKind.DOT)
            self.bound.append(var)
            try:
                body = self.parse_term()
            finally:
                self.bound.pop()
            return Lam(var, domain, body)
        term = self._term_atom()
        while self._at_term_atom():
            term = App(term, self._term_atom())
        return term

    def _at_term_atom(self) -> bool:
        if self._check(TokenKind.NUMBER) or self._check(TokenKind.PRINCIPAL):
            return True
        if self._check(TokenKind.LPAREN):
            return True
        if self._check(TokenKind.HEXBLOB):
            return True
        if self._check(TokenKind.IDENT) and not self.current.is_keyword:
            name = self.current.text
            return (
                name in self.bound
                or self.resolver.term(name) is not None
            )
        if self._check(TokenKind.IDENT, "this"):
            return True
        return False

    def _term_atom(self) -> Term:
        number = self._accept(TokenKind.NUMBER)
        if number is not None:
            return NatLit(int(number.text))
        principal = self._accept(TokenKind.PRINCIPAL)
        if principal is not None:
            return PrincipalLit(bytes.fromhex(principal.text))
        qualified = self._qualified()
        if qualified is not None:
            return Const(qualified)
        if self._check(TokenKind.IDENT) and not self.current.is_keyword:
            name = self._advance().text
            if name in self.bound:
                return Var(name)
            ref = self.resolver.term(name)
            if ref is not None:
                return Const(ref)
            raise self._fail(f"unknown term {name!r}")
        if self._accept(TokenKind.LPAREN):
            term = self.parse_term()
            self._expect(TokenKind.RPAREN)
            return term
        raise self._fail("expected a term")

    # -- conditions ----------------------------------------------------------

    def parse_cond(self) -> Condition:
        cond = self._cond_prefix()
        while self._accept(TokenKind.WEDGE):
            cond = CAnd(cond, self._cond_prefix())
        return cond

    def _cond_prefix(self) -> Condition:
        if self._accept(TokenKind.TILDE):
            return CNot(self._cond_prefix())
        if self._accept(TokenKind.IDENT, "true"):
            return CTrue()
        if self._accept(TokenKind.IDENT, "before"):
            self._expect(TokenKind.LPAREN)
            time = self.parse_term()
            self._expect(TokenKind.RPAREN)
            return Before(time)
        if self._accept(TokenKind.IDENT, "spent"):
            self._expect(TokenKind.LPAREN)
            blob = self._expect(TokenKind.HEXBLOB)
            if len(blob.text) != 64:
                raise self._fail("spent() wants a 64-hex-digit txid")
            self._expect(TokenKind.DOT)
            index = self._expect(TokenKind.NUMBER)
            self._expect(TokenKind.RPAREN)
            return Spent(bytes.fromhex(blob.text), int(index.text))
        if self._accept(TokenKind.LPAREN):
            cond = self.parse_cond()
            self._expect(TokenKind.RPAREN)
            return cond
        raise self._fail("expected a condition")

    # -- propositions ----------------------------------------------------------

    def parse_prop(self) -> Proposition:
        left = self._prop_plus()
        if self._accept(TokenKind.LOLLI):
            return Lolli(left, self.parse_prop())
        return left

    def _prop_plus(self) -> Proposition:
        prop = self._prop_with()
        while self._accept(TokenKind.PLUS):
            prop = Plus(prop, self._prop_with())
        return prop

    def _prop_with(self) -> Proposition:
        prop = self._prop_tensor()
        while self._accept(TokenKind.AMP):
            prop = With(prop, self._prop_tensor())
        return prop

    def _prop_tensor(self) -> Proposition:
        prop = self._prop_prefix()
        while self._accept(TokenKind.STAR):
            prop = Tensor(prop, self._prop_prefix())
        return prop

    def _prop_prefix(self) -> Proposition:
        if self._accept(TokenKind.BANG):
            return Bang(self._prop_prefix())
        if self._accept(TokenKind.LBRACKET):
            principal = self.parse_term()
            self._expect(TokenKind.RBRACKET)
            return Says(principal, self._prop_prefix())
        if self._check(TokenKind.IDENT, "forall") or self._check(
            TokenKind.IDENT, "exists"
        ):
            keyword = self._advance().text
            var = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.COLON)
            domain = self.parse_family()
            self._expect(TokenKind.DOT)
            self.bound.append(var)
            try:
                body = self.parse_prop()
            finally:
                self.bound.pop()
            return (Forall if keyword == "forall" else Exists)(var, domain, body)
        if self._accept(TokenKind.IDENT, "if"):
            self._expect(TokenKind.LPAREN)
            cond = self.parse_cond()
            self._expect(TokenKind.COMMA)
            body = self.parse_prop()
            self._expect(TokenKind.RPAREN)
            return IfProp(cond, body)
        if self._accept(TokenKind.IDENT, "receipt"):
            self._expect(TokenKind.LPAREN)
            prop: Proposition = One()
            amount = 0
            if self._check(TokenKind.NUMBER) and self._peek_is_sends():
                amount = int(self._advance().text)
            else:
                prop = self.parse_prop()
                if self._accept(TokenKind.SLASH):
                    amount = int(self._expect(TokenKind.NUMBER).text)
            self._expect(TokenKind.SENDS)
            recipient = self.parse_term()
            self._expect(TokenKind.RPAREN)
            return Receipt(prop, amount, recipient)
        return self._prop_atom()

    def _peek_is_sends(self) -> bool:
        return self.tokens[self.pos + 1].kind is TokenKind.SENDS

    def _prop_atom(self) -> Proposition:
        if self._check(TokenKind.NUMBER):
            if self.current.text == "0":
                self._advance()
                return Zero()
            if self.current.text == "1":
                self._advance()
                return One()
            raise self._fail("only 0 and 1 are propositions")
        if self._check(TokenKind.LPAREN):
            self._advance()
            prop = self.parse_prop()
            self._expect(TokenKind.RPAREN)
            return prop
        # An atomic proposition: a family constant applied to term atoms.
        qualified = self._qualified()
        if qualified is not None:
            family: TypeFamily = TConst(qualified)
        elif self._check(TokenKind.IDENT) and not self.current.is_keyword:
            name = self.current.text
            ref = self.resolver.family(name)
            if ref is None:
                raise self._fail(f"unknown proposition family {name!r}")
            self._advance()
            family = TConst(ref)
        else:
            raise self._fail("expected a proposition")
        while self._at_term_atom():
            family = TApp(family, self._term_atom())
        return Atom(family)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def parse_kind(source: str, resolver: Resolver | None = None) -> KindT:
    parser = Parser(source, resolver)
    kind = parser.parse_kind()
    parser._expect_eof()
    return kind


def parse_family(source: str, resolver: Resolver | None = None) -> TypeFamily:
    parser = Parser(source, resolver)
    family = parser.parse_family()
    parser._expect_eof()
    return family


def parse_term(source: str, resolver: Resolver | None = None) -> Term:
    parser = Parser(source, resolver)
    term = parser.parse_term()
    parser._expect_eof()
    return term


def parse_cond(source: str, resolver: Resolver | None = None) -> Condition:
    parser = Parser(source, resolver)
    cond = parser.parse_cond()
    parser._expect_eof()
    return cond


def parse_prop(source: str, resolver: Resolver | None = None) -> Proposition:
    parser = Parser(source, resolver)
    prop = parser.parse_prop()
    parser._expect_eof()
    return prop


def parse_basis_text(
    source: str, resolver: Resolver | None = None
) -> tuple[Basis, Resolver]:
    """Parse a local-basis file into declarations.

    Three declaration forms, one per sort::

        family coin : pi n:nat. prop
        term   two  : nat
        rule   merge : forall N:nat. ... -o coin P

    Later declarations may reference earlier ones by bare name; the returned
    resolver includes every declared name (for parsing related propositions).
    """
    resolver = resolver or Resolver()
    basis = Basis()
    parser = Parser(source, resolver)
    while not parser._check(TokenKind.EOF):
        keyword = parser._expect(TokenKind.IDENT)
        if keyword.text not in ("family", "term", "rule"):
            raise ParseError(
                f"expected 'family', 'term', or 'rule' at line {keyword.line}"
            )
        name = parser._expect(TokenKind.IDENT).text
        parser._expect(TokenKind.COLON)
        ref = ConstRef(THIS, name)
        if keyword.text == "family":
            basis.declare(ref, KindDecl(parser.parse_kind()))
            resolver.families[name] = ref
        elif keyword.text == "term":
            basis.declare(ref, TypeDecl(parser.parse_family()))
            resolver.terms[name] = ref
        else:
            basis.declare(ref, PropDecl(parser.parse_prop()))
            resolver.props[name] = ref
    return basis, resolver
