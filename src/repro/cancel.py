"""Cooperative cancellation: per-request deadlines for the checkers.

The recursive LF typechecker (:mod:`repro.lf.typecheck`) and affine proof
checker (:mod:`repro.logic.checker`) are the verification service's hot
path — and, being plain recursive Python, they have no natural
preemption point.  A service that promises "every response within its
deadline" needs the checkers to *notice* an expired deadline and unwind,
instead of burning a worker until an adversarially deep proof finishes.

This module is the low-level mechanism, deliberately dependency-free so
``repro.lf`` and ``repro.logic`` can import it without layering cycles:

* :class:`Deadline` — an absolute point on a monotonic clock, with
  ``remaining()`` / ``expired()`` queries (injectable clock for tests);
* :func:`deadline_scope` — a context manager installing a deadline for
  the current thread (scopes nest; the *tightest* deadline wins because
  an outer scope's expiry also fires inside the inner one);
* :func:`checkpoint` — the cooperative cancellation point the checkers
  call once per recursion step, raising :class:`DeadlineExceeded` when
  the active deadline has passed.

Zero cost when unused, following the ``obs.ENABLED`` discipline: call
sites guard on the module-level :data:`ACTIVE` flag, so a run with no
deadline installed pays one global load and a falsy branch per recursion
step.  When a deadline *is* active, :func:`checkpoint` amortizes its
clock reads: only every :data:`CHECK_STRIDE`-th call touches the clock,
bounding overshoot to a handful of microseconds of checker work.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "ACTIVE",
    "CHECK_STRIDE",
    "Cancelled",
    "Deadline",
    "DeadlineExceeded",
    "checkpoint",
    "current_deadline",
    "deadline_scope",
]


class Cancelled(Exception):
    """Base class for cooperative cancellation."""


class DeadlineExceeded(Cancelled):
    """The active deadline passed while work was still in flight.

    Deliberately *not* a subclass of the checkers' own error types
    (``LFTypeError``, ``ProofError``, ``ValidationFailure``): an expired
    deadline is an infrastructure outcome, never a verdict about the
    proof, so it must unwind straight through the ``except ProofError``
    handlers without being mistaken for an invalid transaction.
    """


# How many checkpoint() calls go by between clock reads while a deadline
# is active.  One infer() step costs ~1µs; a stride of 64 bounds
# detection latency well under a millisecond while keeping the common
# case to one integer decrement.
CHECK_STRIDE = 64

# Fast-path flag: true while ANY thread in this process has a deadline
# installed.  Call sites guard ``if cancel.ACTIVE: cancel.checkpoint()``
# so deadline-free runs (the entire test suite, all non-service uses)
# pay a single global load per recursion step.
ACTIVE = False

_active_lock = threading.Lock()
_active_count = 0

_state = threading.local()


class Deadline:
    """An absolute deadline on a monotonic clock."""

    __slots__ = ("at", "clock")

    def __init__(self, at: float, clock=time.monotonic):
        self.at = at
        self.clock = clock

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "Deadline":
        """The deadline ``seconds`` from now on ``clock``."""
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - self.clock()

    def expired(self) -> bool:
        return self.clock() >= self.at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(at={self.at!r})"


def current_deadline() -> Deadline | None:
    """The innermost-scoped deadline for this thread, if any."""
    stack = getattr(_state, "stack", None)
    return stack[-1] if stack else None


class deadline_scope:
    """Install ``deadline`` for the current thread for the ``with`` body.

    ``deadline_scope(None)`` is a no-op scope, so call sites can write
    ``with deadline_scope(maybe_deadline):`` without branching.  Scopes
    nest: the innermost deadline is consulted first, but an expired outer
    deadline still trips the checkpoint (its expiry is checked on exit of
    the stride window via the stack walk in :func:`_check_now`).
    """

    __slots__ = ("deadline",)

    def __init__(self, deadline: Deadline | None):
        self.deadline = deadline

    def __enter__(self) -> Deadline | None:
        if self.deadline is None:
            return None
        global ACTIVE, _active_count
        stack = getattr(_state, "stack", None)
        if stack is None:
            stack = _state.stack = []
        stack.append(self.deadline)
        _state.countdown = 0  # force a clock read on the first checkpoint
        with _active_lock:
            _active_count += 1
            ACTIVE = True
        return self.deadline

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.deadline is None:
            return
        global ACTIVE, _active_count
        stack = _state.stack
        stack.pop()
        with _active_lock:
            _active_count -= 1
            if _active_count == 0:
                ACTIVE = False


def _check_now() -> None:
    """Read the clock and raise if any scoped deadline has passed."""
    for deadline in _state.stack:
        if deadline.expired():
            raise DeadlineExceeded(
                f"deadline exceeded by {-deadline.remaining():.3f}s"
            )


def checkpoint() -> None:
    """Cooperative cancellation point; call only when :data:`ACTIVE`.

    Cheap by design: a thread-local integer decrement on most calls, a
    clock read every :data:`CHECK_STRIDE` calls.  Threads with no scoped
    deadline (but sharing a process with one that has) fall through on
    the stack check.
    """
    stack = getattr(_state, "stack", None)
    if not stack:
        return
    countdown = getattr(_state, "countdown", 0)
    if countdown > 0:
        _state.countdown = countdown - 1
        return
    _state.countdown = CHECK_STRIDE
    _check_now()
