"""ECDSA over secp256k1 with deterministic (RFC-6979) nonces.

Deterministic nonces matter twice over here: they remove the catastrophic
failure mode of nonce reuse, and they make every simulation in this
repository reproducible bit-for-bit.  Signatures are normalized to low-s form
(as Bitcoin requires post-BIP-62) so that a third party cannot malleate a
transaction id by negating s.

Batch verification
------------------

:func:`batch_verify` checks many ``(pubkey, digest, signature)`` triples
with one multi-scalar equation instead of one dual-scalar multiplication
each.  A signature ``(r, s)`` is valid iff ``x(u1·G + u2·Q) ≡ r (mod n)``;
summing ``cᵢ·(u1ᵢ·G + u2ᵢ·Qᵢ − Rᵢ)`` over the batch with random
coefficients ``cᵢ`` collapses all of those checks into one "is the result
the identity" test.  The catch is that ECDSA transmits only ``r = x(R)``,
not R itself — the y-parity is lost (this is why Schnorr/BIP-340 sends the
full nonce point).  We recover it from a **parity-hint table** warmed by
the in-process signer and by every successful serial verification; a
triple with no hint simply takes the serial path (and warms the table for
next time), so batching is never slower than serial for unhinted inputs
and never changes a verdict: any aggregate failure bisects with fresh
coefficients down to per-signature :func:`verify` leaves, which are the
same code path the serial verifier runs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro import obs
from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    FIELD_PRIME,
    GENERATOR,
    Point,
    dual_scalar_mult,
    lift_x,
    multi_scalar_mult,
    scalar_mult,
)


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature (r, s) in compact 64-byte form."""

    r: int
    s: int

    def encode(self) -> bytes:
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "Signature":
        if len(data) != 64:
            raise ValueError("compact signature must be 64 bytes")
        return Signature(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


def deterministic_nonce(secret: int, digest: bytes) -> int:
    """RFC-6979 nonce derivation (HMAC-SHA256 variant, no extra entropy)."""
    qlen = 32
    key = b"\x00" * 32
    v = b"\x01" * 32
    x = secret.to_bytes(qlen, "big")
    key = hmac.new(key, v + b"\x00" + x + digest, hashlib.sha256).digest()
    v = hmac.new(key, v, hashlib.sha256).digest()
    key = hmac.new(key, v + b"\x01" + x + digest, hashlib.sha256).digest()
    v = hmac.new(key, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(key, v, hashlib.sha256).digest()
        k = int.from_bytes(v, "big")
        if 1 <= k < CURVE_ORDER:
            return k
        key = hmac.new(key, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(key, v, hashlib.sha256).digest()


def _digest_to_int(digest: bytes) -> int:
    return int.from_bytes(digest, "big") % CURVE_ORDER


# R-point parity hints for batch verification, keyed by (digest, r, s).
# The signer computes R = k·G in full and the serial verifier computes
# u1·G + u2·Q in full, so both know the y-parity that the wire format
# drops; recording it here lets batch_verify reconstruct R with lift_x.
# The table is purely an accelerator — a missing entry routes the triple
# to the serial path, and a wrong entry (key collision) only costs a
# bisection round that ends in the serial path — so verdicts never depend
# on it.  Bounded FIFO like the signature cache.
_PARITY_HINTS: dict[tuple[bytes, int, int], bool] = {}
_PARITY_HINTS_MAX = 65_536


def _remember_parity(digest: bytes, r: int, s: int, odd: bool) -> None:
    key = (digest, r, s)
    if key not in _PARITY_HINTS and len(_PARITY_HINTS) >= _PARITY_HINTS_MAX:
        _PARITY_HINTS.pop(next(iter(_PARITY_HINTS)))
    _PARITY_HINTS[key] = odd


def clear_parity_hints() -> None:
    """Drop every recorded R-parity hint (tests exercise the cold path)."""
    _PARITY_HINTS.clear()


def sign(secret: int, digest: bytes) -> Signature:
    """Sign a 32-byte message digest with the scalar ``secret``."""
    if not 1 <= secret < CURVE_ORDER:
        raise ValueError("secret key out of range")
    original_digest = digest
    z = _digest_to_int(digest)
    while True:
        k = deterministic_nonce(secret, digest)
        point = scalar_mult(k)
        assert point.x is not None
        r = point.x % CURVE_ORDER
        if r == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        k_inv = pow(k, CURVE_ORDER - 2, CURVE_ORDER)
        s = (k_inv * (z + r * secret)) % CURVE_ORDER
        if s == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        # A verifier reconstructs R as s⁻¹(z + r·x)·G = (s₀/s)·k·G, so
        # normalizing s → n−s negates the effective R and flips its parity.
        assert point.y is not None
        odd = bool(point.y & 1)
        if s > CURVE_ORDER // 2:
            s = CURVE_ORDER - s
            odd = not odd
        _remember_parity(original_digest, r, s, odd)
        return Signature(r, s)


def verify(public: Point, digest: bytes, signature: Signature) -> bool:
    """Verify a signature against a public point and 32-byte digest.

    ``u1·G + u2·Q`` is computed by the Strauss/Shamir dual-scalar primitive:
    one interleaved Jacobian pass with a single final field inversion,
    instead of two independent ladders joined by an affine addition.
    """
    r, s = signature.r, signature.s
    if not (1 <= r < CURVE_ORDER and 1 <= s < CURVE_ORDER):
        return False
    if public.is_infinity:
        return False
    z = _digest_to_int(digest)
    s_inv = pow(s, CURVE_ORDER - 2, CURVE_ORDER)
    u1 = (z * s_inv) % CURVE_ORDER
    u2 = (r * s_inv) % CURVE_ORDER
    point = dual_scalar_mult(u1, u2, public)
    if point.is_infinity:
        return False
    assert point.x is not None
    if point.x % CURVE_ORDER != r:
        return False
    # The computed point IS the effective R: remember its parity so a
    # future batch containing this triple can aggregate it.
    assert point.y is not None
    _remember_parity(digest, r, s, bool(point.y & 1))
    return True


# Triples at or below this size verify serially: the aggregate equation
# costs about one dual-scalar multiplication itself, so there is nothing
# left to amortize.
_BATCH_MIN = 2


def _batch_coefficient(salt: bytes, digest: bytes, r: int, s: int) -> int:
    """A deterministic pseudo-random 128-bit odd coefficient for one triple.

    Seeded from the batch salt and the triple itself, so coefficients are
    independent across triples and across bisection levels (the salt
    carries the recursion path) — an adversary cannot craft signatures
    that cancel without solving the discrete log.
    """
    material = hashlib.sha256(
        salt + digest + r.to_bytes(32, "big") + s.to_bytes(32, "big")
    ).digest()
    return int.from_bytes(material[:16], "big") | 1


def batch_verify(
    items: list[tuple[Point, bytes, Signature]], *, seed: int = 0
) -> list[bool]:
    """Verify many ``(public, digest, signature)`` triples at once.

    Returns one verdict per triple, **bit-identical** to calling
    :func:`verify` on each: structurally invalid signatures short-circuit
    exactly as the serial path does, triples without an R-parity hint run
    serially, and any aggregate mismatch bisects (fresh coefficients per
    sub-batch) down to serial leaves — so a single bad signature in a
    block is pinpointed deterministically while the good ones still pass.
    """
    verdicts: list[bool] = [False] * len(items)
    prepared: dict[int, tuple[int, int, Point, Point]] = {}
    aggregable: list[int] = []
    if obs.ENABLED:
        obs.inc("ecmult.batch_verify_total")
        obs.inc("ecmult.batch_verify_sigs_total", len(items))
    for index, (public, digest, signature) in enumerate(items):
        r, s = signature.r, signature.s
        if not (1 <= r < CURVE_ORDER and 1 <= s < CURVE_ORDER):
            continue  # serial verify rejects before any curve work
        if public.is_infinity:
            continue
        hint = _PARITY_HINTS.get((digest, r, s))
        if hint is None or r + CURVE_ORDER < FIELD_PRIME:
            # No recorded parity (or the rare r where x(R) could also be
            # r + n): the serial path settles it and warms the hint table.
            if obs.ENABLED:
                obs.inc("ecmult.batch_unhinted_total")
            verdicts[index] = verify(public, digest, signature)
            continue
        r_point = lift_x(r, odd=hint)
        if r_point is None:
            # No curve point has x = r (and the r + n alias is excluded
            # above): the serial comparison x(P) ≡ r can never hold.
            continue
        z = _digest_to_int(digest)
        s_inv = pow(s, CURVE_ORDER - 2, CURVE_ORDER)
        u1 = z * s_inv % CURVE_ORDER
        u2 = r * s_inv % CURVE_ORDER
        prepared[index] = (u1, u2, public, r_point)
        aggregable.append(index)
    if aggregable:
        salt = b"repro.batch/%d" % seed
        _batch_check(items, prepared, aggregable, verdicts, salt)
    return verdicts


def _batch_check(
    items: list[tuple[Point, bytes, Signature]],
    prepared: dict[int, tuple[int, int, Point, Point]],
    indices: list[int],
    verdicts: list[bool],
    salt: bytes,
) -> None:
    """Settle ``indices`` by one aggregate equation, bisecting on failure."""
    if len(indices) < _BATCH_MIN:
        for index in indices:
            public, digest, signature = items[index]
            verdicts[index] = verify(public, digest, signature)
        return
    gen_scalar = 0
    terms: list[tuple[int, Point]] = []
    for index in indices:
        u1, u2, public, r_point = prepared[index]
        _, digest, signature = items[index]
        c = _batch_coefficient(salt, digest, signature.r, signature.s)
        gen_scalar = (gen_scalar + c * u1) % CURVE_ORDER
        terms.append((c * u2 % CURVE_ORDER, public))
        # −c·R enters as (n − c)·R: same group element, positive scalar.
        terms.append((CURVE_ORDER - c, r_point))
    terms.append((gen_scalar, GENERATOR))
    if multi_scalar_mult(terms).is_infinity:
        for index in indices:
            verdicts[index] = True
        return
    # Some triple in this range is bad (or a stale hint pointed at the
    # wrong R half): bisect with a fresh salt so coefficient reuse cannot
    # mask the culprit, ending in serial leaves.
    if obs.ENABLED:
        obs.inc("ecmult.batch_bisect_total")
    mid = len(indices) // 2
    _batch_check(items, prepared, indices[:mid], verdicts, salt + b"/l")
    _batch_check(items, prepared, indices[mid:], verdicts, salt + b"/r")
