"""ECDSA over secp256k1 with deterministic (RFC-6979) nonces.

Deterministic nonces matter twice over here: they remove the catastrophic
failure mode of nonce reuse, and they make every simulation in this
repository reproducible bit-for-bit.  Signatures are normalized to low-s form
(as Bitcoin requires post-BIP-62) so that a third party cannot malleate a
transaction id by negating s.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    Point,
    dual_scalar_mult,
    scalar_mult,
)


@dataclass(frozen=True)
class Signature:
    """An ECDSA signature (r, s) in compact 64-byte form."""

    r: int
    s: int

    def encode(self) -> bytes:
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "Signature":
        if len(data) != 64:
            raise ValueError("compact signature must be 64 bytes")
        return Signature(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


def deterministic_nonce(secret: int, digest: bytes) -> int:
    """RFC-6979 nonce derivation (HMAC-SHA256 variant, no extra entropy)."""
    qlen = 32
    key = b"\x00" * 32
    v = b"\x01" * 32
    x = secret.to_bytes(qlen, "big")
    key = hmac.new(key, v + b"\x00" + x + digest, hashlib.sha256).digest()
    v = hmac.new(key, v, hashlib.sha256).digest()
    key = hmac.new(key, v + b"\x01" + x + digest, hashlib.sha256).digest()
    v = hmac.new(key, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(key, v, hashlib.sha256).digest()
        k = int.from_bytes(v, "big")
        if 1 <= k < CURVE_ORDER:
            return k
        key = hmac.new(key, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(key, v, hashlib.sha256).digest()


def _digest_to_int(digest: bytes) -> int:
    return int.from_bytes(digest, "big") % CURVE_ORDER


def sign(secret: int, digest: bytes) -> Signature:
    """Sign a 32-byte message digest with the scalar ``secret``."""
    if not 1 <= secret < CURVE_ORDER:
        raise ValueError("secret key out of range")
    z = _digest_to_int(digest)
    while True:
        k = deterministic_nonce(secret, digest)
        point = scalar_mult(k)
        assert point.x is not None
        r = point.x % CURVE_ORDER
        if r == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        k_inv = pow(k, CURVE_ORDER - 2, CURVE_ORDER)
        s = (k_inv * (z + r * secret)) % CURVE_ORDER
        if s == 0:
            digest = hashlib.sha256(digest).digest()
            continue
        if s > CURVE_ORDER // 2:
            s = CURVE_ORDER - s
        return Signature(r, s)


def verify(public: Point, digest: bytes, signature: Signature) -> bool:
    """Verify a signature against a public point and 32-byte digest.

    ``u1·G + u2·Q`` is computed by the Strauss/Shamir dual-scalar primitive:
    one interleaved Jacobian pass with a single final field inversion,
    instead of two independent ladders joined by an affine addition.
    """
    r, s = signature.r, signature.s
    if not (1 <= r < CURVE_ORDER and 1 <= s < CURVE_ORDER):
        return False
    if public.is_infinity:
        return False
    z = _digest_to_int(digest)
    s_inv = pow(s, CURVE_ORDER - 2, CURVE_ORDER)
    u1 = (z * s_inv) % CURVE_ORDER
    u2 = (r * s_inv) % CURVE_ORDER
    point = dual_scalar_mult(u1, u2, public)
    if point.is_infinity:
        return False
    assert point.x is not None
    return point.x % CURVE_ORDER == r
