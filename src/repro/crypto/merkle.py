"""Bitcoin-style Merkle trees.

Block headers commit to their transactions through a Merkle root; light
verification of membership uses a branch of sibling hashes.  Bitcoin's quirk
of duplicating the last node at odd levels is reproduced faithfully.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256d


def merkle_root(leaves: list[bytes]) -> bytes:
    """Compute the Merkle root of ``leaves`` (txids, already hashed).

    The root of an empty list is 32 zero bytes (only the genesis-construction
    code ever asks for it).
    """
    if not leaves:
        return b"\x00" * 32
    level = list(leaves)
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


def merkle_branch(leaves: list[bytes], index: int) -> list[bytes]:
    """The sibling hashes proving ``leaves[index]`` is under the root."""
    if not 0 <= index < len(leaves):
        raise IndexError("leaf index out of range")
    branch: list[bytes] = []
    level = list(leaves)
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        sibling = index ^ 1
        branch.append(level[sibling])
        level = [sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
        index //= 2
    return branch


def verify_branch(leaf: bytes, branch: list[bytes], index: int, root: bytes) -> bool:
    """Check a Merkle branch produced by :func:`merkle_branch`."""
    acc = leaf
    for sibling in branch:
        if index & 1:
            acc = sha256d(sibling + acc)
        else:
            acc = sha256d(acc + sibling)
        index //= 2
    return acc == root
