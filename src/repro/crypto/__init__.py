"""Cryptographic substrate for the Typecoin reproduction.

This package provides everything Bitcoin-shaped systems need and nothing
more: SHA-256 (single and double), RIPEMD-160 (pure Python, with an OpenSSL
fast path), HASH160, base58check, secp256k1 ECDSA with RFC-6979 deterministic
nonces, and Bitcoin-style Merkle trees.

All functions are deterministic; nothing here reads the clock or the OS
entropy pool unless explicitly asked to generate a fresh key.
"""

from repro.crypto.hashing import sha256, sha256d, ripemd160, hash160
from repro.crypto.base58 import b58check_encode, b58check_decode, Base58Error
from repro.crypto.secp256k1 import (
    CURVE_ORDER,
    FIELD_PRIME,
    GENERATOR,
    Point,
    scalar_mult,
)
from repro.crypto.ecdsa import Signature, sign, verify, deterministic_nonce
from repro.crypto.keys import PrivateKey, PublicKey, new_private_key
from repro.crypto.merkle import merkle_root, merkle_branch, verify_branch

__all__ = [
    "sha256",
    "sha256d",
    "ripemd160",
    "hash160",
    "b58check_encode",
    "b58check_decode",
    "Base58Error",
    "CURVE_ORDER",
    "FIELD_PRIME",
    "GENERATOR",
    "Point",
    "scalar_mult",
    "Signature",
    "sign",
    "verify",
    "deterministic_nonce",
    "PrivateKey",
    "PublicKey",
    "new_private_key",
    "merkle_root",
    "merkle_branch",
    "verify_branch",
]
