"""Pure-Python RIPEMD-160.

Bitcoin derives addresses from HASH160 = RIPEMD160(SHA256(pubkey)).  Python's
``hashlib`` only exposes RIPEMD-160 when the linked OpenSSL provides it, which
modern OpenSSL builds frequently do not.  This module is a self-contained
implementation of the function as specified by Dobbertin, Bosselaers and
Preneel (1996), used as a fallback by :mod:`repro.crypto.hashing`.

The implementation favours clarity over speed; it processes one 64-byte block
at a time with the ten round functions written out explicitly.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF

# Message-word selection for the left and right lines, 5 rounds of 16 steps.
_R_LEFT = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
    7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8,
    3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12,
    1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2,
    4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13,
]
_R_RIGHT = [
    5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12,
    6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2,
    15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13,
    8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14,
    12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11,
]

# Per-step left-rotation amounts.
_S_LEFT = [
    11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8,
    7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12,
    11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5,
    11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12,
    9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6,
]
_S_RIGHT = [
    8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6,
    9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11,
    9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5,
    15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8,
    8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11,
]

_K_LEFT = (0x00000000, 0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xA953FD4E)
_K_RIGHT = (0x50A28BE6, 0x5C4DD124, 0x6D703EF3, 0x7A6D76E9, 0x00000000)


def _rol(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK


def _f(round_index: int, x: int, y: int, z: int) -> int:
    if round_index == 0:
        return x ^ y ^ z
    if round_index == 1:
        return (x & y) | (~x & z)
    if round_index == 2:
        return (x | ~y) ^ z
    if round_index == 3:
        return (x & z) | (y & ~z)
    return x ^ (y | ~z)


def _compress(state: list[int], block: bytes) -> None:
    words = struct.unpack("<16I", block)
    al, bl, cl, dl, el = state
    ar, br, cr, dr, er = state

    for j in range(80):
        rnd = j // 16
        # Left line.
        t = (al + _f(rnd, bl, cl, dl) + words[_R_LEFT[j]] + _K_LEFT[rnd]) & _MASK
        t = (_rol(t, _S_LEFT[j]) + el) & _MASK
        al, el, dl, cl, bl = el, dl, _rol(cl, 10), bl, t
        # Right line uses the round functions in reverse order.
        t = (ar + _f(4 - rnd, br, cr, dr) + words[_R_RIGHT[j]] + _K_RIGHT[rnd]) & _MASK
        t = (_rol(t, _S_RIGHT[j]) + er) & _MASK
        ar, er, dr, cr, br = er, dr, _rol(cr, 10), br, t

    combined = (state[1] + cl + dr) & _MASK
    state[1] = (state[2] + dl + er) & _MASK
    state[2] = (state[3] + el + ar) & _MASK
    state[3] = (state[4] + al + br) & _MASK
    state[4] = (state[0] + bl + cr) & _MASK
    state[0] = combined


def ripemd160_pure(data: bytes) -> bytes:
    """Compute the RIPEMD-160 digest of ``data`` without OpenSSL."""
    state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]
    length = len(data)
    # Merkle-Damgård padding: 0x80, zeros, then the bit length little-endian.
    padded = data + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack("<Q", length * 8)
    for offset in range(0, len(padded), 64):
        _compress(state, padded[offset : offset + 64])
    return struct.pack("<5I", *state)
