"""Hash functions used throughout the Bitcoin and Typecoin layers.

Bitcoin hashes everything twice with SHA-256 (``sha256d``) and derives key
hashes with ``hash160`` (RIPEMD-160 over SHA-256).  Typecoin uses ``sha256d``
for transaction-hash embedding (DESIGN.md S17).
"""

from __future__ import annotations

import hashlib

from repro.crypto.ripemd160 import ripemd160_pure


def sha256(data: bytes) -> bytes:
    """Single SHA-256."""
    return hashlib.sha256(data).digest()


def sha256d(data: bytes) -> bytes:
    """Double SHA-256, Bitcoin's workhorse hash (txids, block hashes)."""
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def _openssl_ripemd160(data: bytes) -> bytes | None:
    try:
        h = hashlib.new("ripemd160")
    except (ValueError, TypeError):
        return None
    h.update(data)
    return h.digest()


def ripemd160(data: bytes) -> bytes:
    """RIPEMD-160, via OpenSSL when available, else the pure-Python fallback."""
    digest = _openssl_ripemd160(data)
    if digest is not None:
        return digest
    return ripemd160_pure(data)


def hash160(data: bytes) -> bytes:
    """RIPEMD160(SHA256(data)) — Bitcoin's address hash."""
    return ripemd160(sha256(data))
