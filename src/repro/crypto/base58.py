"""Base58Check encoding, Bitcoin's human-facing address/key format.

Base58 drops the visually ambiguous characters (0, O, I, l) from base 62;
Base58Check appends a 4-byte double-SHA-256 checksum before encoding so that
mistyped addresses are detected rather than silently paying a stranger.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256d

ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_INDEX = {ch: i for i, ch in enumerate(ALPHABET)}


class Base58Error(ValueError):
    """Raised on malformed base58check input (bad character or checksum)."""


def b58encode(data: bytes) -> str:
    """Encode raw bytes as base58 (no checksum)."""
    value = int.from_bytes(data, "big")
    encoded: list[str] = []
    while value > 0:
        value, rem = divmod(value, 58)
        encoded.append(ALPHABET[rem])
    # Leading zero bytes encode as leading '1's.
    leading_zeros = len(data) - len(data.lstrip(b"\x00"))
    return "1" * leading_zeros + "".join(reversed(encoded))


def b58decode(text: str) -> bytes:
    """Decode base58 text to raw bytes (no checksum)."""
    value = 0
    for ch in text:
        if ch not in _INDEX:
            raise Base58Error(f"invalid base58 character: {ch!r}")
        value = value * 58 + _INDEX[ch]
    decoded = value.to_bytes((value.bit_length() + 7) // 8, "big")
    leading_ones = len(text) - len(text.lstrip("1"))
    return b"\x00" * leading_ones + decoded


def b58check_encode(payload: bytes, version: int = 0x00) -> str:
    """Encode ``payload`` with a version byte and 4-byte checksum."""
    body = bytes([version]) + payload
    return b58encode(body + sha256d(body)[:4])


def b58check_decode(text: str) -> tuple[int, bytes]:
    """Decode base58check text, returning ``(version, payload)``.

    Raises :class:`Base58Error` if the checksum does not verify.
    """
    raw = b58decode(text)
    if len(raw) < 5:
        raise Base58Error("base58check string too short")
    body, checksum = raw[:-4], raw[-4:]
    if sha256d(body)[:4] != checksum:
        raise Base58Error("base58check checksum mismatch")
    return body[0], body[1:]
