"""Key pairs and addresses.

A Typecoin *principal* is identified with the HASH160 of a public key
(paper §4: "principal literals K, which we take to be cryptographic hashes of
public keys"), so :meth:`PublicKey.principal` is the bridge between the
crypto layer and the logic layer.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from functools import cached_property

from repro.crypto.base58 import b58check_decode, b58check_encode
from repro.crypto.ecdsa import Signature, sign, verify
from repro.crypto.hashing import hash160, sha256
from repro.crypto.secp256k1 import CURVE_ORDER, Point, scalar_mult

ADDRESS_VERSION = 0x6F  # testnet-style prefix; this is a simulated network


@dataclass(frozen=True)
class PublicKey:
    """A secp256k1 public key with Bitcoin-style derived identifiers."""

    point: Point

    @cached_property
    def encoded(self) -> bytes:
        """33-byte compressed SEC1 encoding."""
        return self.point.encode(compressed=True)

    @cached_property
    def key_hash(self) -> bytes:
        """HASH160 of the compressed encoding (20 bytes)."""
        return hash160(self.encoded)

    @property
    def principal(self) -> bytes:
        """The Typecoin principal literal this key denotes (= key hash)."""
        return self.key_hash

    @property
    def address(self) -> str:
        """Base58check P2PKH address."""
        return b58check_encode(self.key_hash, version=ADDRESS_VERSION)

    @staticmethod
    def from_bytes(data: bytes) -> "PublicKey":
        return PublicKey(Point.decode(data))

    @staticmethod
    def hash_from_address(address: str) -> bytes:
        version, payload = b58check_decode(address)
        if version != ADDRESS_VERSION or len(payload) != 20:
            raise ValueError("not a P2PKH address for this network")
        return payload

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Verify a signature over the SHA-256 digest of ``message``."""
        return verify(self.point, sha256(message), signature)


@dataclass(frozen=True)
class PrivateKey:
    """A secp256k1 private key (scalar)."""

    secret: int

    def __post_init__(self) -> None:
        if not 1 <= self.secret < CURVE_ORDER:
            raise ValueError("private key scalar out of range")

    @cached_property
    def public(self) -> PublicKey:
        return PublicKey(scalar_mult(self.secret))

    def sign(self, message: bytes) -> Signature:
        """Sign the SHA-256 digest of ``message``."""
        return sign(self.secret, sha256(message))

    def sign_digest(self, digest: bytes) -> Signature:
        """Sign a precomputed 32-byte digest (used for sighash signing)."""
        return sign(self.secret, digest)

    @staticmethod
    def from_seed(seed: bytes) -> "PrivateKey":
        """Derive a key deterministically from a seed (for reproducible tests)."""
        scalar = int.from_bytes(sha256(seed), "big") % (CURVE_ORDER - 1) + 1
        return PrivateKey(scalar)


def new_private_key() -> PrivateKey:
    """Generate a fresh random private key from OS entropy."""
    return PrivateKey(secrets.randbelow(CURVE_ORDER - 1) + 1)
