"""secp256k1 elliptic-curve group operations.

Bitcoin signatures live on the Koblitz curve y² = x³ + 7 over the prime field
GF(p) with p = 2²⁵⁶ − 2³² − 977.  This module implements affine point
arithmetic with a Jacobian fast path for scalar multiplication; it is pure
Python and deterministic.

Points are immutable; the identity (point at infinity) is represented by the
singleton :data:`INFINITY` whose ``x``/``y`` are ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

FIELD_PRIME = 2**256 - 2**32 - 977
CURVE_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_B = 7

_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


@dataclass(frozen=True)
class Point:
    """A point on secp256k1, or the identity when both coordinates are None."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __post_init__(self) -> None:
        if self.x is None:
            return
        assert self.y is not None
        if (self.y * self.y - (self.x**3 + _B)) % FIELD_PRIME != 0:
            raise ValueError("point is not on secp256k1")

    def encode(self, compressed: bool = True) -> bytes:
        """SEC1 encoding (33 bytes compressed, 65 uncompressed)."""
        if self.is_infinity:
            raise ValueError("cannot encode the point at infinity")
        assert self.x is not None and self.y is not None
        xb = self.x.to_bytes(32, "big")
        if compressed:
            prefix = b"\x03" if self.y % 2 else b"\x02"
            return prefix + xb
        return b"\x04" + xb + self.y.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "Point":
        """Decode a SEC1-encoded point."""
        if len(data) == 33 and data[0] in (2, 3):
            x = int.from_bytes(data[1:], "big")
            if x >= FIELD_PRIME:
                raise ValueError("x coordinate out of range")
            y_sq = (pow(x, 3, FIELD_PRIME) + _B) % FIELD_PRIME
            y = pow(y_sq, (FIELD_PRIME + 1) // 4, FIELD_PRIME)
            if (y * y) % FIELD_PRIME != y_sq:
                raise ValueError("x coordinate has no square root (not on curve)")
            if (y % 2) != (data[0] == 3):
                y = FIELD_PRIME - y
            return Point(x, y)
        if len(data) == 65 and data[0] == 4:
            return Point(
                int.from_bytes(data[1:33], "big"), int.from_bytes(data[33:], "big")
            )
        raise ValueError("malformed SEC1 point encoding")


INFINITY = Point(None, None)
GENERATOR = Point(_GX, _GY)


def _inv(a: int) -> int:
    return pow(a, FIELD_PRIME - 2, FIELD_PRIME)


def point_add(p: Point, q: Point) -> Point:
    """Affine point addition (complete: handles identity and doubling)."""
    if p.is_infinity:
        return q
    if q.is_infinity:
        return p
    assert p.x is not None and p.y is not None
    assert q.x is not None and q.y is not None
    if p.x == q.x:
        if (p.y + q.y) % FIELD_PRIME == 0:
            return INFINITY
        slope = (3 * p.x * p.x) * _inv(2 * p.y) % FIELD_PRIME
    else:
        slope = (q.y - p.y) * _inv(q.x - p.x) % FIELD_PRIME
    x3 = (slope * slope - p.x - q.x) % FIELD_PRIME
    y3 = (slope * (p.x - x3) - p.y) % FIELD_PRIME
    return Point(x3, y3)


# --- Jacobian coordinates: (X, Y, Z) with x = X/Z², y = Y/Z³.  Avoids one
# field inversion per addition, which dominates pure-Python run time. ---


def _to_jacobian(p: Point) -> tuple[int, int, int]:
    if p.is_infinity:
        return (0, 0, 0)
    assert p.x is not None and p.y is not None
    return (p.x, p.y, 1)


def _from_jacobian(j: tuple[int, int, int]) -> Point:
    x, y, z = j
    if z == 0:
        return INFINITY
    zinv = pow(z, FIELD_PRIME - 2, FIELD_PRIME)
    zinv2 = (zinv * zinv) % FIELD_PRIME
    return Point((x * zinv2) % FIELD_PRIME, (y * zinv2 * zinv) % FIELD_PRIME)


def _jacobian_double(j: tuple[int, int, int]) -> tuple[int, int, int]:
    x, y, z = j
    if z == 0 or y == 0:
        return (0, 0, 0)
    s = (4 * x * y * y) % FIELD_PRIME
    m = (3 * x * x) % FIELD_PRIME  # a = 0 for secp256k1
    x3 = (m * m - 2 * s) % FIELD_PRIME
    y3 = (m * (s - x3) - 8 * pow(y, 4, FIELD_PRIME)) % FIELD_PRIME
    z3 = (2 * y * z) % FIELD_PRIME
    return (x3, y3, z3)


def _jacobian_add(
    j: tuple[int, int, int], q: tuple[int, int, int]
) -> tuple[int, int, int]:
    if j[2] == 0:
        return q
    if q[2] == 0:
        return j
    x1, y1, z1 = j
    x2, y2, z2 = q
    z1z1 = (z1 * z1) % FIELD_PRIME
    z2z2 = (z2 * z2) % FIELD_PRIME
    u1 = (x1 * z2z2) % FIELD_PRIME
    u2 = (x2 * z1z1) % FIELD_PRIME
    s1 = (y1 * z2 * z2z2) % FIELD_PRIME
    s2 = (y2 * z1 * z1z1) % FIELD_PRIME
    if u1 == u2:
        if s1 != s2:
            return (0, 0, 0)
        return _jacobian_double(j)
    h = (u2 - u1) % FIELD_PRIME
    h2 = (h * h) % FIELD_PRIME
    h3 = (h * h2) % FIELD_PRIME
    r = (s2 - s1) % FIELD_PRIME
    x3 = (r * r - h3 - 2 * u1 * h2) % FIELD_PRIME
    y3 = (r * (u1 * h2 - x3) - s1 * h3) % FIELD_PRIME
    z3 = (h * z1 * z2) % FIELD_PRIME
    return (x3, y3, z3)


def scalar_mult(k: int, p: Point = GENERATOR) -> Point:
    """Compute k·P by double-and-add over Jacobian coordinates."""
    k %= CURVE_ORDER
    if k == 0 or p.is_infinity:
        return INFINITY
    result = (0, 0, 0)
    addend = _to_jacobian(p)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)
