"""secp256k1 elliptic-curve group operations.

Bitcoin signatures live on the Koblitz curve y² = x³ + 7 over the prime field
GF(p) with p = 2²⁵⁶ − 2³² − 977.  This module implements affine point
arithmetic with a Jacobian fast path for scalar multiplication; it is pure
Python and deterministic.

Scalar multiplication is the hot path of the whole reproduction (rule 4 of
paper §2 runs two of them per signature), so three layered accelerations
live here:

* **w-NAF** — scalars are recoded into width-w non-adjacent form, cutting
  the additions per multiplication from ~128 to ~n/(w+1) against a small
  table of odd multiples of the base point;
* **fixed-window generator tables** — multiples ``d·16^i·G`` are
  precomputed once per process, so generator multiplications (signing,
  the ``u1·G`` half of verification) need no doublings at all;
* **Strauss/Shamir** — :func:`dual_scalar_mult` computes ``u1·G + u2·Q``
  in one interleaved pass that shares the doubling ladder between both
  scalars and stays in Jacobian coordinates until a single final field
  inversion.

The naive double-and-add ladder is kept as :func:`scalar_mult_naive`; the
property tests and benchmarks pin the fast paths against it.

Points are immutable; the identity (point at infinity) is represented by the
singleton :data:`INFINITY` whose ``x``/``y`` are ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs

FIELD_PRIME = 2**256 - 2**32 - 977
CURVE_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
_B = 7

_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

# w-NAF window width for arbitrary points (table built per multiplication)
# and for the generator's shared table (built once per process).
_WNAF_WIDTH = 5
_GEN_WNAF_WIDTH = 8
# Fixed-window width for pure generator multiplications: 64 windows of 4
# bits cover a 256-bit scalar with one mixed addition each, no doublings.
_FIXED_WINDOW = 4


@dataclass(frozen=True)
class Point:
    """A point on secp256k1, or the identity when both coordinates are None."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __post_init__(self) -> None:
        if self.x is None:
            return
        assert self.y is not None
        if (self.y * self.y - (self.x**3 + _B)) % FIELD_PRIME != 0:
            raise ValueError("point is not on secp256k1")

    def encode(self, compressed: bool = True) -> bytes:
        """SEC1 encoding (33 bytes compressed, 65 uncompressed)."""
        if self.is_infinity:
            raise ValueError("cannot encode the point at infinity")
        assert self.x is not None and self.y is not None
        xb = self.x.to_bytes(32, "big")
        if compressed:
            prefix = b"\x03" if self.y % 2 else b"\x02"
            return prefix + xb
        return b"\x04" + xb + self.y.to_bytes(32, "big")

    @staticmethod
    def decode(data: bytes) -> "Point":
        """Decode a SEC1-encoded point."""
        if len(data) == 33 and data[0] in (2, 3):
            x = int.from_bytes(data[1:], "big")
            if x >= FIELD_PRIME:
                raise ValueError("x coordinate out of range")
            y_sq = (pow(x, 3, FIELD_PRIME) + _B) % FIELD_PRIME
            y = pow(y_sq, (FIELD_PRIME + 1) // 4, FIELD_PRIME)
            if (y * y) % FIELD_PRIME != y_sq:
                raise ValueError("x coordinate has no square root (not on curve)")
            if (y % 2) != (data[0] == 3):
                y = FIELD_PRIME - y
            return Point(x, y)
        if len(data) == 65 and data[0] == 4:
            return Point(
                int.from_bytes(data[1:33], "big"), int.from_bytes(data[33:], "big")
            )
        raise ValueError("malformed SEC1 point encoding")


def _point_unchecked(x: int, y: int) -> Point:
    """Construct a Point without the on-curve assertion.

    Internal results of correct group arithmetic are on the curve by
    construction; paying a field multiplication and a cube per intermediate
    conversion was pure overhead.  Anything crossing the trust boundary
    (``Point.decode``, user construction) still goes through the checked
    constructor.
    """
    point = object.__new__(Point)
    object.__setattr__(point, "x", x)
    object.__setattr__(point, "y", y)
    return point


INFINITY = Point(None, None)
GENERATOR = Point(_GX, _GY)


def _inv(a: int) -> int:
    return pow(a, FIELD_PRIME - 2, FIELD_PRIME)


def point_add(p: Point, q: Point) -> Point:
    """Affine point addition (complete: handles identity and doubling)."""
    if p.is_infinity:
        return q
    if q.is_infinity:
        return p
    assert p.x is not None and p.y is not None
    assert q.x is not None and q.y is not None
    if p.x == q.x:
        if (p.y + q.y) % FIELD_PRIME == 0:
            return INFINITY
        slope = (3 * p.x * p.x) * _inv(2 * p.y) % FIELD_PRIME
    else:
        slope = (q.y - p.y) * _inv(q.x - p.x) % FIELD_PRIME
    x3 = (slope * slope - p.x - q.x) % FIELD_PRIME
    y3 = (slope * (p.x - x3) - p.y) % FIELD_PRIME
    return _point_unchecked(x3, y3)


# --- Jacobian coordinates: (X, Y, Z) with x = X/Z², y = Y/Z³.  Avoids one
# field inversion per addition, which dominates pure-Python run time. ---


def _to_jacobian(p: Point) -> tuple[int, int, int]:
    if p.is_infinity:
        return (0, 0, 0)
    assert p.x is not None and p.y is not None
    return (p.x, p.y, 1)


def _from_jacobian(j: tuple[int, int, int]) -> Point:
    x, y, z = j
    if z == 0:
        return INFINITY
    zinv = pow(z, FIELD_PRIME - 2, FIELD_PRIME)
    zinv2 = (zinv * zinv) % FIELD_PRIME
    return _point_unchecked(
        (x * zinv2) % FIELD_PRIME, (y * zinv2 * zinv) % FIELD_PRIME
    )


def _jacobian_double(j: tuple[int, int, int]) -> tuple[int, int, int]:
    x, y, z = j
    if z == 0 or y == 0:
        return (0, 0, 0)
    p = FIELD_PRIME
    yy = y * y % p
    s = 4 * x * yy % p
    m = 3 * x * x % p  # a = 0 for secp256k1
    x3 = (m * m - 2 * s) % p
    y3 = (m * (s - x3) - 8 * yy * yy) % p
    z3 = 2 * y * z % p
    return (x3, y3, z3)


def _jacobian_add(
    j: tuple[int, int, int], q: tuple[int, int, int]
) -> tuple[int, int, int]:
    if j[2] == 0:
        return q
    if q[2] == 0:
        return j
    x1, y1, z1 = j
    x2, y2, z2 = q
    z1z1 = (z1 * z1) % FIELD_PRIME
    z2z2 = (z2 * z2) % FIELD_PRIME
    u1 = (x1 * z2z2) % FIELD_PRIME
    u2 = (x2 * z1z1) % FIELD_PRIME
    s1 = (y1 * z2 * z2z2) % FIELD_PRIME
    s2 = (y2 * z1 * z1z1) % FIELD_PRIME
    if u1 == u2:
        if s1 != s2:
            return (0, 0, 0)
        return _jacobian_double(j)
    h = (u2 - u1) % FIELD_PRIME
    h2 = (h * h) % FIELD_PRIME
    h3 = (h * h2) % FIELD_PRIME
    r = (s2 - s1) % FIELD_PRIME
    x3 = (r * r - h3 - 2 * u1 * h2) % FIELD_PRIME
    y3 = (r * (u1 * h2 - x3) - s1 * h3) % FIELD_PRIME
    z3 = (h * z1 * z2) % FIELD_PRIME
    return (x3, y3, z3)


def _jacobian_madd(
    j: tuple[int, int, int], a: tuple[int, int]
) -> tuple[int, int, int]:
    """Mixed addition: Jacobian ``j`` plus an *affine* point (Z₂ = 1).

    Saves the Z₂ bookkeeping of the general formula — this is why the
    precomputed tables are batch-normalized to affine coordinates.
    """
    x1, y1, z1 = j
    if z1 == 0:
        return (a[0], a[1], 1)
    p = FIELD_PRIME
    x2, y2 = a
    z1z1 = z1 * z1 % p
    u2 = x2 * z1z1 % p
    s2 = y2 * z1 % p * z1z1 % p
    if u2 == x1:
        if s2 != y1:
            return (0, 0, 0)
        return _jacobian_double(j)
    h = (u2 - x1) % p
    h2 = h * h % p
    h3 = h * h2 % p
    r = (s2 - y1) % p
    x3 = (r * r - h3 - 2 * x1 * h2) % p
    y3 = (r * (x1 * h2 - x3) - y1 * h3) % p
    z3 = h * z1 % p
    return (x3, y3, z3)


def _batch_to_affine(jacs: list[tuple[int, int, int]]) -> list[tuple[int, int]]:
    """Normalize many Jacobian points with ONE field inversion (Montgomery's
    trick): invert the product of the Z's, then peel per-point inverses off
    with multiplications.  Callers guarantee no point is the identity."""
    p = FIELD_PRIME
    prefix: list[int] = []
    acc = 1
    for _, _, z in jacs:
        prefix.append(acc)
        acc = acc * z % p
    inv = pow(acc, p - 2, p)
    out: list[tuple[int, int]] = [(0, 0)] * len(jacs)
    for i in range(len(jacs) - 1, -1, -1):
        x, y, z = jacs[i]
        zinv = inv * prefix[i] % p
        inv = inv * z % p
        zi2 = zinv * zinv % p
        out[i] = (x * zi2 % p, y * zi2 % p * zinv % p)
    return out


def _wnaf(k: int, width: int) -> list[int]:
    """Width-w non-adjacent form, least-significant digit first.

    Digits are zero or odd with ``|d| < 2^(w-1)``; at most one in any
    ``width`` consecutive positions is nonzero, so a 256-bit scalar costs
    ~256/(width+1) table additions.
    """
    naf: list[int] = []
    window = 1 << width
    half = window >> 1
    while k:
        if k & 1:
            d = k & (window - 1)
            if d >= half:
                d -= window
            k -= d
            naf.append(d)
        else:
            naf.append(0)
        k >>= 1
    return naf


def _odd_multiples_affine(p: Point, count: int) -> list[tuple[int, int]]:
    """Affine ``[1P, 3P, 5P, …, (2·count−1)P]`` for w-NAF table lookups."""
    jac = _to_jacobian(p)
    twice = _jacobian_double(jac)
    muls = [jac]
    for _ in range(count - 1):
        muls.append(_jacobian_add(muls[-1], twice))
    return _batch_to_affine(muls)


# Per-point w-NAF tables are cached: building one costs a field inversion
# (~250 multiplications), and real workloads verify many signatures against
# few distinct public keys (a wallet's inputs, a miner's coinbase chain).
_POINT_TABLE_CACHE: dict[tuple[int, int], list[tuple[int, int]]] = {}
_POINT_TABLE_CACHE_MAX = 256


def _point_wnaf_table(p: Point) -> list[tuple[int, int]]:
    """The (cached) odd-multiples table of an arbitrary point."""
    key = (p.x, p.y)  # type: ignore[assignment]
    table = _POINT_TABLE_CACHE.get(key)
    if table is not None:
        return table
    table = _odd_multiples_affine(p, 1 << (_WNAF_WIDTH - 2))
    if len(_POINT_TABLE_CACHE) >= _POINT_TABLE_CACHE_MAX:
        # Drop the oldest insertion (dicts preserve insertion order).
        _POINT_TABLE_CACHE.pop(next(iter(_POINT_TABLE_CACHE)))
    _POINT_TABLE_CACHE[key] = table
    if obs.ENABLED:
        obs.inc("ecmult.point_table_builds_total")
    return table


# --- GLV endomorphism: secp256k1 has an efficiently computable
# endomorphism φ(x, y) = (β·x, y) that acts as multiplication by λ
# (λ³ ≡ 1 mod n, β³ ≡ 1 mod p).  Splitting a 256-bit scalar k into
# k1 + k2·λ with |k1|, |k2| ≈ √n halves the doubling ladder: two
# half-width scalars share 128 doublings instead of one full-width
# scalar needing 256. ---

_LAMBDA = 0x5363AD4CC05C30E0A5261C028812645A122E22EA20816678DF02967C1B23BD72
_BETA = 0x7AE96A2B657C07106E64479EAC3434E99CF0497512F58995C1396C28719501EE

# Lattice basis for the decomposition (libsecp256k1's constants):
# both (A1, -B1) and (A2, B2) satisfy a + b·λ ≡ 0 (mod n).
_GLV_A1 = 0x3086D221A7D46BCDE86C90E49284EB15
_GLV_B1 = 0xE4437ED6010E88286F547FA90ABFE4C3  # stored negated: b1 = -_GLV_B1
_GLV_A2 = 0x114CA50F7A8E2F3F657C1108D9D44CFD8


def _glv_split(k: int) -> tuple[int, int]:
    """Return (k1, k2) with k ≡ k1 + k2·λ (mod n) and both ≈ 128 bits.

    Babai rounding against the lattice basis; exact bigint arithmetic, so
    the only property relied on is the congruence (asserted by the
    property tests), not any rounding subtlety.
    """
    n = CURVE_ORDER
    c1 = (_GLV_A1 * k + (n >> 1)) // n  # round(b2·k / n), b2 = a1
    c2 = (_GLV_B1 * k + (n >> 1)) // n  # round(-b1·k / n)
    k1 = k - c1 * _GLV_A1 - c2 * _GLV_A2
    k2 = c1 * _GLV_B1 - c2 * _GLV_A1  # -c1·b1 - c2·b2
    return k1, k2


# --- Generator tables, built lazily once per process. ---

_GEN_FIXED: list[list[tuple[int, int]]] | None = None
_GEN_WNAF: list[tuple[int, int]] | None = None
_GEN_LAMBDA_WNAF: list[tuple[int, int]] | None = None


def _gen_fixed_table() -> list[list[tuple[int, int]]]:
    """``table[i][d-1] = d · 16^i · G`` for d in 1..15, i in 0..63."""
    global _GEN_FIXED
    if _GEN_FIXED is None:
        windows = 256 // _FIXED_WINDOW
        digits = (1 << _FIXED_WINDOW) - 1
        flat: list[tuple[int, int, int]] = []
        base = _to_jacobian(GENERATOR)
        for _ in range(windows):
            entry = base
            for _ in range(digits):
                flat.append(entry)
                entry = _jacobian_add(entry, base)
            # base ← 16·base for the next window.
            for _ in range(_FIXED_WINDOW):
                base = _jacobian_double(base)
        affine = _batch_to_affine(flat)
        _GEN_FIXED = [
            affine[w * digits : (w + 1) * digits] for w in range(windows)
        ]
        if obs.ENABLED:
            obs.inc("ecmult.table_builds_total")
    return _GEN_FIXED


def _gen_wnaf_table() -> list[tuple[int, int]]:
    """Odd multiples of G for the Strauss/Shamir interleaved pass."""
    global _GEN_WNAF
    if _GEN_WNAF is None:
        _GEN_WNAF = _odd_multiples_affine(
            GENERATOR, 1 << (_GEN_WNAF_WIDTH - 2)
        )
        if obs.ENABLED:
            obs.inc("ecmult.table_builds_total")
    return _GEN_WNAF


def _gen_lambda_wnaf_table() -> list[tuple[int, int]]:
    """Odd multiples of λ·G: the G table mapped through the endomorphism
    (one field multiplication per entry — no group operations)."""
    global _GEN_LAMBDA_WNAF
    if _GEN_LAMBDA_WNAF is None:
        _GEN_LAMBDA_WNAF = [
            (_BETA * x % FIELD_PRIME, y) for x, y in _gen_wnaf_table()
        ]
        if obs.ENABLED:
            obs.inc("ecmult.table_builds_total")
    return _GEN_LAMBDA_WNAF


def _madd_digit(
    acc: tuple[int, int, int], table: list[tuple[int, int]], digit: int
) -> tuple[int, int, int]:
    """Add ``digit``·(table base) where ``table`` holds odd multiples."""
    if digit > 0:
        return _jacobian_madd(acc, table[digit >> 1])
    x, y = table[(-digit) >> 1]
    return _jacobian_madd(acc, (x, FIELD_PRIME - y))


def _gen_mult_jacobian(k: int) -> tuple[int, int, int]:
    """``k·G`` via the fixed-window table: one mixed add per nonzero
    4-bit window, no doublings."""
    table = _gen_fixed_table()
    acc = (0, 0, 0)
    i = 0
    while k:
        d = k & 15
        if d:
            acc = _jacobian_madd(acc, table[i][d - 1])
        k >>= 4
        i += 1
    return acc


def scalar_mult_naive(k: int, p: Point = GENERATOR) -> Point:
    """Reference double-and-add ladder (the pre-fast-path implementation).

    Kept as the differential baseline: the property tests assert the w-NAF
    and Strauss/Shamir paths agree with it, and the B1 benchmark measures
    the speedup against it.
    """
    k %= CURVE_ORDER
    if k == 0 or p.is_infinity:
        return INFINITY
    result = (0, 0, 0)
    addend = _to_jacobian(p)
    while k:
        if k & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        k >>= 1
    return _from_jacobian(result)


def scalar_mult(k: int, p: Point = GENERATOR) -> Point:
    """Compute k·P — fixed-window for the generator, w-NAF otherwise."""
    k %= CURVE_ORDER
    if k == 0 or p.is_infinity:
        return INFINITY
    prof = None
    if obs.ENABLED:
        obs.inc("ecmult.mults_total")
        prof = obs.PROFILER
        if prof is not None:
            prof.enter("ecmult")
    try:
        if p.x == _GX and p.y == _GY:
            return _from_jacobian(_gen_mult_jacobian(k))
        table = _point_wnaf_table(p)
        naf = _wnaf(k, _WNAF_WIDTH)
        acc = (0, 0, 0)
        for digit in reversed(naf):
            acc = _jacobian_double(acc)
            if digit:
                acc = _madd_digit(acc, table, digit)
        return _from_jacobian(acc)
    finally:
        if prof is not None:
            prof.exit()


def _wnaf_signed(k: int, width: int) -> list[int]:
    """w-NAF of a possibly negative scalar (digits negated for -k)."""
    if k < 0:
        return [-d for d in _wnaf(-k, width)]
    return _wnaf(k, width)


def lift_x(x: int, odd: bool) -> Point | None:
    """The curve point with x-coordinate ``x`` and the requested y-parity.

    Returns ``None`` when no such point exists (x³ + 7 is a quadratic
    non-residue — about half of all field elements).  Batch ECDSA
    verification uses this to reconstruct the full R point from the
    signature's ``r`` scalar, which only transmits ``x(R) mod n``.
    """
    if not 0 <= x < FIELD_PRIME:
        return None
    y_sq = (pow(x, 3, FIELD_PRIME) + _B) % FIELD_PRIME
    y = pow(y_sq, (FIELD_PRIME + 1) // 4, FIELD_PRIME)
    if y * y % FIELD_PRIME != y_sq:
        return None
    if bool(y & 1) != odd:
        y = FIELD_PRIME - y
    return _point_unchecked(x, y)


def dual_scalar_mult(u1: int, u2: int, q: Point) -> Point:
    """``u1·G + u2·Q`` by GLV-split Strauss/Shamir interleaving.

    Both scalars are split through the λ endomorphism into half-width
    halves, so four ~128-bit w-NAF streams share ONE ~128-step doubling
    ladder: the generator halves read the process-wide G / λG tables, the
    ``Q`` halves a small per-call table of odd multiples (its λQ twin
    costs one field multiplication per entry).  Everything stays in
    Jacobian coordinates until the single final inversion — this is the
    primitive ECDSA verification is built on.
    """
    u1 %= CURVE_ORDER
    u2 %= CURVE_ORDER
    if q.is_infinity:
        u2 = 0
    if not u1 and not u2:
        return INFINITY
    prof = None
    if obs.ENABLED:
        obs.inc("ecmult.dual_total")
        prof = obs.PROFILER
        if prof is not None:
            prof.enter("ecmult")
    try:
        streams: list[tuple[list[int], list[tuple[int, int]]]] = []
        if u1:
            k1, k2 = _glv_split(u1)
            if k1:
                streams.append(
                    (_wnaf_signed(k1, _GEN_WNAF_WIDTH), _gen_wnaf_table())
                )
            if k2:
                streams.append(
                    (_wnaf_signed(k2, _GEN_WNAF_WIDTH), _gen_lambda_wnaf_table())
                )
        if u2:
            k1, k2 = _glv_split(u2)
            qtab = _point_wnaf_table(q)
            if k1:
                streams.append((_wnaf_signed(k1, _WNAF_WIDTH), qtab))
            if k2:
                lqtab = [(_BETA * x % FIELD_PRIME, y) for x, y in qtab]
                streams.append((_wnaf_signed(k2, _WNAF_WIDTH), lqtab))

        top = max(len(naf) for naf, _ in streams)
        # Pad every stream to the ladder length so the hot loop is
        # branch-light.
        padded = [
            (naf + [0] * (top - len(naf)), tab) for naf, tab in streams
        ]
        p = FIELD_PRIME
        x, y, z = 0, 0, 0
        for i in range(top - 1, -1, -1):
            if z:
                if y == 0:
                    x, y, z = 0, 0, 0
                else:
                    # Inlined Jacobian doubling: the ladder's innermost step.
                    yy = y * y % p
                    s = 4 * x * yy % p
                    m = 3 * x * x % p
                    x3 = (m * m - 2 * s) % p
                    y3 = (m * (s - x3) - 8 * yy * yy) % p
                    z = 2 * y * z % p
                    x, y = x3, y3
            for naf, tab in padded:
                digit = naf[i]
                if digit:
                    x, y, z = _madd_digit((x, y, z), tab, digit)
        return _from_jacobian((x, y, z))
    finally:
        if prof is not None:
            prof.exit()


def multi_scalar_mult(terms) -> Point:
    """``Σ kᵢ·Pᵢ`` over any number of terms in ONE Strauss/Shamir pass.

    The n-scalar generalization of :func:`dual_scalar_mult`: every scalar
    is GLV-split into two ~128-bit halves, each half becomes a w-NAF
    stream over its point's odd-multiples table, and all streams share a
    single ~128-step doubling ladder.  Generator terms are folded into one
    scalar first (they share the process-wide G / λG tables); tables for
    points not already in the per-point cache are built in Jacobian form
    and normalized together with ONE batched field inversion, so the
    marginal cost of an extra term is additions, not inversions.

    ``terms`` is an iterable of ``(scalar, Point)``; scalars are reduced
    mod n.  Returns :data:`INFINITY` for an empty or all-zero batch.
    """
    gen_k = 0
    by_point: dict[Point, int] = {}
    for k, point in terms:
        k %= CURVE_ORDER
        if k == 0 or point.is_infinity:
            continue
        if point.x == _GX and point.y == _GY:
            gen_k = (gen_k + k) % CURVE_ORDER
        else:
            # Repeated points (one pubkey signing many inputs) fold into a
            # single term: k₁·P + k₂·P = (k₁+k₂)·P.
            by_point[point] = (by_point.get(point, 0) + k) % CURVE_ORDER
    others = [(k, point) for point, k in by_point.items() if k]
    if not gen_k and not others:
        return INFINITY
    prof = None
    if obs.ENABLED:
        obs.inc("ecmult.batch_total")
        obs.inc(
            "ecmult.batch_terms_total", len(others) + (1 if gen_k else 0)
        )
        prof = obs.PROFILER
        if prof is not None:
            prof.enter("ecmult")
    try:
        streams: list[tuple[list[int], list[tuple[int, int]]]] = []
        if gen_k:
            k1, k2 = _glv_split(gen_k)
            if k1:
                streams.append(
                    (_wnaf_signed(k1, _GEN_WNAF_WIDTH), _gen_wnaf_table())
                )
            if k2:
                streams.append(
                    (_wnaf_signed(k2, _GEN_WNAF_WIDTH), _gen_lambda_wnaf_table())
                )
        # Cached tables are reused as-is; tables for new points are built
        # in Jacobian coordinates and normalized together below — the
        # whole batch pays one field inversion, not one per point.
        count = 1 << (_WNAF_WIDTH - 2)
        tables: list[list[tuple[int, int]] | None] = []
        pending: list[tuple[int, int, int]] = []
        for _, point in others:
            cached = _POINT_TABLE_CACHE.get((point.x, point.y))
            if cached is not None:
                tables.append(cached)
                continue
            jac = _to_jacobian(point)
            twice = _jacobian_double(jac)
            muls = [jac]
            for _ in range(count - 1):
                muls.append(_jacobian_add(muls[-1], twice))
            pending.extend(muls)
            tables.append(None)
        if pending:
            affine = _batch_to_affine(pending)
            cursor = 0
            for slot, table in enumerate(tables):
                if table is None:
                    tables[slot] = affine[cursor : cursor + count]
                    cursor += count
        for (k, _), table in zip(others, tables):
            assert table is not None
            k1, k2 = _glv_split(k)
            if k1:
                streams.append((_wnaf_signed(k1, _WNAF_WIDTH), table))
            if k2:
                lam_table = [
                    (_BETA * x % FIELD_PRIME, y) for x, y in table
                ]
                streams.append((_wnaf_signed(k2, _WNAF_WIDTH), lam_table))
        if not streams:
            # Every GLV half reduced to zero (k ≡ 0 splits are filtered
            # above, so this is unreachable in practice — kept for safety).
            return INFINITY
        top = max(len(naf) for naf, _ in streams)
        padded = [
            (naf + [0] * (top - len(naf)), tab) for naf, tab in streams
        ]
        p = FIELD_PRIME
        x, y, z = 0, 0, 0
        for i in range(top - 1, -1, -1):
            if z:
                if y == 0:
                    x, y, z = 0, 0, 0
                else:
                    yy = y * y % p
                    s = 4 * x * yy % p
                    m = 3 * x * x % p
                    x3 = (m * m - 2 * s) % p
                    y3 = (m * (s - x3) - 8 * yy * yy) % p
                    z = 2 * y * z % p
                    x, y = x3, y3
            for naf, tab in padded:
                digit = naf[i]
                if digit:
                    x, y, z = _madd_digit((x, y, z), tab, digit)
        return _from_jacobian((x, y, z))
    finally:
        if prof is not None:
            prof.exit()
