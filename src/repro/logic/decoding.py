"""Decoding the canonical wire format back into syntax trees.

:mod:`repro.logic.encoding` defines the α-invariant byte format used for
hashing and signing; this module is its inverse, so that claim bundles and
transactions can actually travel between principals (§3: the prover
"provides the Typecoin transaction T_I, as well as 𝔗").

Bound variables are regenerated from de Bruijn depth (``u0, u1, …`` for LF
binders, ``p0, p1, …`` for proof binders), so ``decode(encode(x))`` is
α-equivalent to ``x`` and ``encode(decode(b)) == b``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lf.syntax import (
    BUILTIN,
    THIS,
    App,
    Const,
    ConstRef,
    Kind,
    KindSort,
    KindT,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Term,
    TypeFamily,
    Var,
)
from repro.logic import proofterms as pt
from repro.logic.conditions import Before, CAnd, CNot, Condition, CTrue, Spent
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)


class DecodingError(Exception):
    """Malformed or truncated wire data."""


@dataclass
class Cursor:
    """A byte reader with LEB128/blob primitives and binder environments."""

    data: bytes
    pos: int = 0

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise DecodingError("unexpected end of input")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def uint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise DecodingError("LEB128 value too large")

    def blob(self) -> bytes:
        length = self.uint()
        if self.pos + length > len(self.data):
            raise DecodingError("truncated blob")
        value = self.data[self.pos : self.pos + length]
        self.pos += length
        return value

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def _lf_name(depth: int) -> str:
    return f"u{depth}"


def _proof_name(depth: int) -> str:
    return f"p{depth}"


def decode_ref(cursor: Cursor) -> ConstRef:
    space_blob = cursor.blob()
    name = cursor.blob().decode()
    if space_blob == b"\x00":
        return ConstRef(THIS, name)
    if space_blob == b"\x01":
        return ConstRef(BUILTIN, name)
    if space_blob[:1] == b"\x02":
        return ConstRef(space_blob[1:], name)
    raise DecodingError(f"unknown namespace tag {space_blob[:1]!r}")


def decode_term(cursor: Cursor, depth: int = 0) -> Term:
    tag = cursor.byte()
    if tag == 0x10:
        index = cursor.uint()
        if index >= depth:
            raise DecodingError("de Bruijn index out of range")
        return Var(_lf_name(depth - 1 - index))
    if tag == 0x11:
        return Const(decode_ref(cursor))
    if tag == 0x12:
        domain = decode_family(cursor, depth)
        body = decode_term(cursor, depth + 1)
        return Lam(_lf_name(depth), domain, body)
    if tag == 0x13:
        func = decode_term(cursor, depth)
        arg = decode_term(cursor, depth)
        return App(func, arg)
    if tag == 0x14:
        return PrincipalLit(cursor.blob())
    if tag == 0x15:
        return NatLit(cursor.uint())
    raise DecodingError(f"unknown term tag 0x{tag:02x}")


def decode_family(cursor: Cursor, depth: int = 0) -> TypeFamily:
    tag = cursor.byte()
    if tag == 0x20:
        return TConst(decode_ref(cursor))
    if tag == 0x21:
        family = decode_family(cursor, depth)
        arg = decode_term(cursor, depth)
        return TApp(family, arg)
    if tag == 0x22:
        domain = decode_family(cursor, depth)
        body = decode_family(cursor, depth + 1)
        return TPi(_lf_name(depth), domain, body)
    raise DecodingError(f"unknown family tag 0x{tag:02x}")


def decode_kind(cursor: Cursor, depth: int = 0) -> KindT:
    tag = cursor.byte()
    if tag == 0x30:
        sort = cursor.byte()
        return Kind(KindSort.TYPE if sort == 0 else KindSort.PROP)
    if tag == 0x31:
        domain = decode_family(cursor, depth)
        body = decode_kind(cursor, depth + 1)
        return KPi(_lf_name(depth), domain, body)
    raise DecodingError(f"unknown kind tag 0x{tag:02x}")


def decode_cond(cursor: Cursor, depth: int = 0) -> Condition:
    tag = cursor.byte()
    if tag == 0x40:
        return CTrue()
    if tag == 0x41:
        left = decode_cond(cursor, depth)
        right = decode_cond(cursor, depth)
        return CAnd(left, right)
    if tag == 0x42:
        return CNot(decode_cond(cursor, depth))
    if tag == 0x43:
        return Before(decode_term(cursor, depth))
    if tag == 0x44:
        txid = cursor.blob()
        index = cursor.uint()
        return Spent(txid, index)
    raise DecodingError(f"unknown condition tag 0x{tag:02x}")


def decode_prop(cursor: Cursor, depth: int = 0) -> Proposition:
    tag = cursor.byte()
    if tag == 0x50:
        return Atom(decode_family(cursor, depth))
    if tag in (0x51, 0x52, 0x53, 0x54):
        left = decode_prop(cursor, depth)
        right = decode_prop(cursor, depth)
        ctor = {0x51: Lolli, 0x52: Tensor, 0x53: With, 0x54: Plus}[tag]
        return ctor(left, right)
    if tag == 0x55:
        return Zero()
    if tag == 0x56:
        return One()
    if tag == 0x57:
        return Bang(decode_prop(cursor, depth))
    if tag in (0x58, 0x59):
        domain = decode_family(cursor, depth)
        body = decode_prop(cursor, depth + 1)
        ctor = Forall if tag == 0x58 else Exists
        return ctor(_lf_name(depth), domain, body)
    if tag == 0x5A:
        principal = decode_term(cursor, depth)
        body = decode_prop(cursor, depth)
        return Says(principal, body)
    if tag == 0x5B:
        prop = decode_prop(cursor, depth)
        amount = cursor.uint()
        recipient = decode_term(cursor, depth)
        return Receipt(prop, amount, recipient)
    if tag == 0x5C:
        condition = decode_cond(cursor, depth)
        body = decode_prop(cursor, depth)
        return IfProp(condition, body)
    raise DecodingError(f"unknown proposition tag 0x{tag:02x}")


def decode_proof(
    cursor: Cursor, depth: int = 0, lf_depth: int = 0
) -> pt.ProofTerm:
    tag = cursor.byte()

    def prf(d=0, lf=0):
        return decode_proof(cursor, depth + d, lf_depth + lf)

    def prp(lf=0):
        return decode_prop(cursor, lf_depth + lf)

    def trm(lf=0):
        return decode_term(cursor, lf_depth + lf)

    if tag == 0x60:
        index = cursor.uint()
        if index >= depth:
            raise DecodingError("proof de Bruijn index out of range")
        return pt.PVar(_proof_name(depth - 1 - index))
    if tag == 0x61:
        return pt.PConst(decode_ref(cursor))
    if tag == 0x62:
        annotation = prp()
        body = prf(d=1)
        return pt.LolliIntro(_proof_name(depth), annotation, body)
    if tag == 0x63:
        return pt.LolliElim(prf(), prf())
    if tag == 0x64:
        return pt.TensorIntro(prf(), prf())
    if tag == 0x65:
        scrutinee = prf()
        body = prf(d=2)
        return pt.TensorElim(
            _proof_name(depth), _proof_name(depth + 1), scrutinee, body
        )
    if tag == 0x66:
        return pt.WithIntro(prf(), prf())
    if tag == 0x67:
        return pt.WithFst(prf())
    if tag == 0x68:
        return pt.WithSnd(prf())
    if tag == 0x69:
        return pt.PlusInl(prp(), prf())
    if tag == 0x6A:
        return pt.PlusInr(prp(), prf())
    if tag == 0x6B:
        scrutinee = prf()
        left = prf(d=1)
        right = prf(d=1)
        name = _proof_name(depth)
        return pt.PlusCase(scrutinee, name, left, name, right)
    if tag == 0x6C:
        return pt.OneIntro()
    if tag == 0x6D:
        return pt.OneElim(prf(), prf())
    if tag == 0x6E:
        scrutinee = prf()
        annotation = prp()
        return pt.ZeroElim(scrutinee, annotation)
    if tag == 0x6F:
        return pt.BangIntro(prf())
    if tag == 0x70:
        scrutinee = prf()
        body = prf(d=1)
        return pt.BangElim(_proof_name(depth), scrutinee, body)
    if tag == 0x71:
        domain = decode_family(cursor, lf_depth)
        body = prf(lf=1)
        return pt.ForallIntro(_lf_name(lf_depth), domain, body)
    if tag == 0x72:
        body = prf()
        arg = trm()
        return pt.ForallElim(body, arg)
    if tag == 0x73:
        annotation = prp()
        witness = trm()
        body = prf()
        return pt.ExistsIntro(annotation, witness, body)
    if tag == 0x74:
        scrutinee = prf()
        body = decode_proof(cursor, depth + 1, lf_depth + 1)
        return pt.ExistsElim(
            _lf_name(lf_depth), _proof_name(depth), scrutinee, body
        )
    if tag == 0x75:
        principal = trm()
        body = prf()
        return pt.SayReturn(principal, body)
    if tag == 0x76:
        scrutinee = prf()
        body = prf(d=1)
        return pt.SayBind(_proof_name(depth), scrutinee, body)
    if tag in (0x77, 0x78):
        principal = trm()
        prop = prp()
        pubkey = cursor.blob()
        signature = cursor.blob()
        ctor = pt.Assert if tag == 0x77 else pt.AssertPersistent
        return ctor(principal, prop, pt.Affirmation(pubkey, signature))
    if tag == 0x79:
        condition = decode_cond(cursor, lf_depth)
        body = prf()
        return pt.IfReturn(condition, body)
    if tag == 0x7A:
        scrutinee = prf()
        body = prf(d=1)
        return pt.IfBind(_proof_name(depth), scrutinee, body)
    if tag == 0x7B:
        condition = decode_cond(cursor, lf_depth)
        body = prf()
        return pt.IfWeaken(condition, body)
    if tag == 0x7C:
        return pt.IfSay(prf())
    raise DecodingError(f"unknown proof tag 0x{tag:02x}")
