"""Canonical byte encoding of logic syntax, for hashing and signing.

Typecoin embeds the hash of the full transaction into Bitcoin (§3), and the
``assert``/``assert!`` proof forms sign propositions (§4, Appendix A), so
every syntactic class needs a deterministic serialization.  Bound variables
are encoded as de Bruijn indices, making the encoding α-invariant: two
α-equivalent propositions hash identically.
"""

from __future__ import annotations

from repro.lf.syntax import (
    BUILTIN,
    THIS,
    App,
    Const,
    ConstRef,
    Kind,
    KindSort,
    KindT,
    KPi,
    Lam,
    NatLit,
    PrincipalLit,
    TApp,
    TConst,
    TPi,
    Term,
    TypeFamily,
    Var,
)
from repro.logic.conditions import Before, CAnd, CNot, Condition, CTrue, Spent
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)


class EncodingError(Exception):
    """Raised when a node cannot be canonically encoded (e.g. free vars)."""


def _uint(n: int) -> bytes:
    """Unsigned LEB128."""
    out = bytearray()
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _blob(data: bytes) -> bytes:
    return _uint(len(data)) + data


def _ref(ref: ConstRef) -> bytes:
    if ref.space is THIS:
        space = b"\x00"
    elif ref.space is BUILTIN:
        space = b"\x01"
    else:
        space = b"\x02" + ref.space
    return _blob(space) + _blob(ref.name.encode())


def encode_term(term: Term, env: tuple[str, ...] = ()) -> bytes:
    """Canonical encoding of an LF term; ``env`` maps binders to indices."""
    if isinstance(term, Var):
        for depth, name in enumerate(reversed(env)):
            if name == term.name:
                return b"\x10" + _uint(depth)
        raise EncodingError(f"free variable {term.name} in canonical encoding")
    if isinstance(term, Const):
        return b"\x11" + _ref(term.ref)
    if isinstance(term, Lam):
        return (
            b"\x12"
            + encode_family(term.domain, env)
            + encode_term(term.body, env + (term.var,))
        )
    if isinstance(term, App):
        return b"\x13" + encode_term(term.func, env) + encode_term(term.arg, env)
    if isinstance(term, PrincipalLit):
        return b"\x14" + _blob(term.key_hash)
    if isinstance(term, NatLit):
        return b"\x15" + _uint(term.value)
    raise TypeError(f"not an LF term: {term!r}")


def encode_family(family: TypeFamily, env: tuple[str, ...] = ()) -> bytes:
    if isinstance(family, TConst):
        return b"\x20" + _ref(family.ref)
    if isinstance(family, TApp):
        return b"\x21" + encode_family(family.family, env) + encode_term(family.arg, env)
    if isinstance(family, TPi):
        return (
            b"\x22"
            + encode_family(family.domain, env)
            + encode_family(family.body, env + (family.var,))
        )
    raise TypeError(f"not an LF family: {family!r}")


def encode_kind(kind: KindT, env: tuple[str, ...] = ()) -> bytes:
    if isinstance(kind, Kind):
        return b"\x30" + (b"\x00" if kind.sort is KindSort.TYPE else b"\x01")
    if isinstance(kind, KPi):
        return (
            b"\x31"
            + encode_family(kind.domain, env)
            + encode_kind(kind.body, env + (kind.var,))
        )
    raise TypeError(f"not an LF kind: {kind!r}")


def encode_cond(cond: Condition, env: tuple[str, ...] = ()) -> bytes:
    if isinstance(cond, CTrue):
        return b"\x40"
    if isinstance(cond, CAnd):
        return b"\x41" + encode_cond(cond.left, env) + encode_cond(cond.right, env)
    if isinstance(cond, CNot):
        return b"\x42" + encode_cond(cond.body, env)
    if isinstance(cond, Before):
        return b"\x43" + encode_term(cond.time, env)
    if isinstance(cond, Spent):
        return b"\x44" + _blob(cond.txid) + _uint(cond.index)
    raise TypeError(f"not a condition: {cond!r}")


_BINARY_TAGS = {Lolli: b"\x51", Tensor: b"\x52", With: b"\x53", Plus: b"\x54"}


def encode_prop(prop: Proposition, env: tuple[str, ...] = ()) -> bytes:
    if isinstance(prop, Atom):
        return b"\x50" + encode_family(prop.family, env)
    tag = _BINARY_TAGS.get(type(prop))
    if tag is not None:
        if isinstance(prop, Lolli):
            left, right = prop.antecedent, prop.consequent
        else:
            left, right = prop.left, prop.right  # type: ignore[union-attr]
        return tag + encode_prop(left, env) + encode_prop(right, env)
    if isinstance(prop, Zero):
        return b"\x55"
    if isinstance(prop, One):
        return b"\x56"
    if isinstance(prop, Bang):
        return b"\x57" + encode_prop(prop.body, env)
    if isinstance(prop, Forall):
        return (
            b"\x58"
            + encode_family(prop.domain, env)
            + encode_prop(prop.body, env + (prop.var,))
        )
    if isinstance(prop, Exists):
        return (
            b"\x59"
            + encode_family(prop.domain, env)
            + encode_prop(prop.body, env + (prop.var,))
        )
    if isinstance(prop, Says):
        return b"\x5a" + encode_term(prop.principal, env) + encode_prop(prop.body, env)
    if isinstance(prop, Receipt):
        return (
            b"\x5b"
            + encode_prop(prop.prop, env)
            + _uint(prop.amount)
            + encode_term(prop.recipient, env)
        )
    if isinstance(prop, IfProp):
        return b"\x5c" + encode_cond(prop.condition, env) + encode_prop(prop.body, env)
    raise TypeError(f"not a proposition: {prop!r}")


def encode_proof(term, env: tuple[str, ...] = (), lf_env: tuple[str, ...] = ()) -> bytes:
    """Canonical encoding of a proof term (for Typecoin transaction hashes).

    Proof variables and LF variables are tracked in separate binder
    environments, both encoded as de Bruijn indices.
    """
    from repro.logic import proofterms as pt

    def prf(sub, env2=env, lf2=lf_env):
        return encode_proof(sub, env2, lf2)

    def trm(sub, lf2=lf_env):
        return encode_term(sub, lf2)

    def prp(sub, lf2=lf_env):
        return _encode_prop_env(sub, lf2)

    if isinstance(term, pt.PVar):
        for depth, name in enumerate(reversed(env)):
            if name == term.name:
                return b"\x60" + _uint(depth)
        raise EncodingError(f"free proof variable {term.name}")
    if isinstance(term, pt.PConst):
        return b"\x61" + _ref(term.ref)
    if isinstance(term, pt.LolliIntro):
        return b"\x62" + prp(term.annotation) + prf(term.body, env + (term.var,))
    if isinstance(term, pt.LolliElim):
        return b"\x63" + prf(term.func) + prf(term.arg)
    if isinstance(term, pt.TensorIntro):
        return b"\x64" + prf(term.left) + prf(term.right)
    if isinstance(term, pt.TensorElim):
        return (
            b"\x65"
            + prf(term.scrutinee)
            + prf(term.body, env + (term.left_var, term.right_var))
        )
    if isinstance(term, pt.WithIntro):
        return b"\x66" + prf(term.left) + prf(term.right)
    if isinstance(term, pt.WithFst):
        return b"\x67" + prf(term.body)
    if isinstance(term, pt.WithSnd):
        return b"\x68" + prf(term.body)
    if isinstance(term, pt.PlusInl):
        return b"\x69" + prp(term.other) + prf(term.body)
    if isinstance(term, pt.PlusInr):
        return b"\x6a" + prp(term.other) + prf(term.body)
    if isinstance(term, pt.PlusCase):
        return (
            b"\x6b"
            + prf(term.scrutinee)
            + prf(term.left_body, env + (term.left_var,))
            + prf(term.right_body, env + (term.right_var,))
        )
    if isinstance(term, pt.OneIntro):
        return b"\x6c"
    if isinstance(term, pt.OneElim):
        return b"\x6d" + prf(term.scrutinee) + prf(term.body)
    if isinstance(term, pt.ZeroElim):
        return b"\x6e" + prf(term.scrutinee) + prp(term.annotation)
    if isinstance(term, pt.BangIntro):
        return b"\x6f" + prf(term.body)
    if isinstance(term, pt.BangElim):
        return b"\x70" + prf(term.scrutinee) + prf(term.body, env + (term.var,))
    if isinstance(term, pt.ForallIntro):
        return (
            b"\x71"
            + encode_family(term.domain, lf_env)
            + prf(term.body, env, lf_env + (term.var,))
        )
    if isinstance(term, pt.ForallElim):
        return b"\x72" + prf(term.body) + trm(term.arg)
    if isinstance(term, pt.ExistsIntro):
        return b"\x73" + prp(term.annotation) + trm(term.witness) + prf(term.body)
    if isinstance(term, pt.ExistsElim):
        return (
            b"\x74"
            + prf(term.scrutinee)
            + encode_proof(
                term.body, env + (term.proof_var,), lf_env + (term.type_var,)
            )
        )
    if isinstance(term, pt.SayReturn):
        return b"\x75" + trm(term.principal) + prf(term.body)
    if isinstance(term, pt.SayBind):
        return b"\x76" + prf(term.scrutinee) + prf(term.body, env + (term.var,))
    if isinstance(term, (pt.Assert, pt.AssertPersistent)):
        tag = b"\x77" if isinstance(term, pt.Assert) else b"\x78"
        return (
            tag
            + trm(term.principal)
            + prp(term.prop)
            + _blob(term.affirmation.pubkey)
            + _blob(term.affirmation.signature)
        )
    if isinstance(term, pt.IfReturn):
        return b"\x79" + encode_cond(term.condition, lf_env) + prf(term.body)
    if isinstance(term, pt.IfBind):
        return b"\x7a" + prf(term.scrutinee) + prf(term.body, env + (term.var,))
    if isinstance(term, pt.IfWeaken):
        return b"\x7b" + encode_cond(term.condition, lf_env) + prf(term.body)
    if isinstance(term, pt.IfSay):
        return b"\x7c" + prf(term.body)
    raise TypeError(f"not a proof term: {term!r}")


def _encode_prop_env(prop, lf_env: tuple[str, ...]) -> bytes:
    return encode_prop(prop, lf_env)
