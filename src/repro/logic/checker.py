"""The proof checker: judgement T;Σ;Ψ;Γ;Δ ⊢ M : A (paper Appendix A).

Affine resource accounting uses *consumed sets*: checking a proof term
synthesizes its proposition together with the set of affine hypotheses it
consumed.  Multiplicative forms (application, ⊗, the binds) require their
parts to consume disjoint sets; additive forms (&-intro, ⊕-case) let both
branches consume the same resources, because only one alternative is ever
realized; weakening is free — the logic is affine, not linear (§4
"Affinity").

The transaction T enters the judgement only through ``assert``: affine
affirmations sign the enclosing transaction "in order to prevent replay
attacks on it."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import cancel, obs
from repro.crypto.ecdsa import Signature, verify as ecdsa_verify
from repro.crypto.hashing import hash160, sha256
from repro.crypto.secp256k1 import Point
from repro.lf.basis import Basis, BasisError, NAT_T, PRINCIPAL_T, PropDecl
from repro.lf.normalize import normalize, terms_equal
from repro.lf.syntax import (
    Kind,
    KindSort,
    PrincipalLit,
    Term,
    TypeFamily,
    Var as LFVar,
)
from repro.lf.typecheck import (
    LFContext,
    LFTypeError,
    check_family_is_type,
    check_type,
    infer_kind,
)
from repro.logic.conditions import (
    Before,
    CAnd,
    CNot,
    Condition,
    CTrue,
    Spent,
    conditions_equal,
    implies,
)
from repro.logic.encoding import EncodingError, encode_prop
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
    free_vars_prop,
    normalize_prop,
    props_equal,
    substitute_prop,
)
from repro.logic.proofterms import (
    Affirmation,
    Assert,
    AssertPersistent,
    BangElim,
    BangIntro,
    ExistsElim,
    ExistsIntro,
    ForallElim,
    ForallIntro,
    IfBind,
    IfReturn,
    IfSay,
    IfWeaken,
    LolliElim,
    LolliIntro,
    OneElim,
    OneIntro,
    PConst,
    PlusCase,
    PlusInl,
    PlusInr,
    ProofTerm,
    PVar,
    SayBind,
    SayReturn,
    TensorElim,
    TensorIntro,
    WithFst,
    WithIntro,
    WithSnd,
    ZeroElim,
)


class ProofError(Exception):
    """A proof term fails to check."""


AFFINE_ASSERT_TAG = b"typecoin:assert:"
PERSISTENT_ASSERT_TAG = b"typecoin:assert!:"


def affine_assert_payload(txn_payload: bytes, prop: Proposition) -> bytes:
    """The message an affine ``assert`` signature covers: "essentially the
    entire transaction in which it appears" plus the proposition."""
    return AFFINE_ASSERT_TAG + txn_payload + encode_prop(normalize_prop(prop))


def persistent_assert_payload(prop: Proposition) -> bytes:
    """The message an ``assert!`` signature covers: "only the proposition A"."""
    return PERSISTENT_ASSERT_TAG + encode_prop(normalize_prop(prop))


# Installed by the verification service (repro.service.cache): a bounded
# LRU over affirmation-signature verification results — the sigcache
# pattern applied to the proof checker's hottest leaf.  The result is a
# pure function of the key (principal, pubkey, payload digest, signature),
# so caching it is sound.  ``None`` (the default, and the state the whole
# non-service pipeline runs in) verifies directly.
AFFIRMATION_CACHE = None


def verify_affirmation(
    principal: PrincipalLit, payload: bytes, affirmation: Affirmation
) -> bool:
    """Check that the affirmation's key hashes to the principal and signs
    the payload."""
    cache = AFFIRMATION_CACHE
    if cache is None:
        return _verify_affirmation(principal, payload, affirmation)
    key = (
        principal.key_hash,
        affirmation.pubkey,
        sha256(payload),
        affirmation.signature,
    )
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = _verify_affirmation(principal, payload, affirmation)
    cache.put(key, result)
    return result


def _verify_affirmation(
    principal: PrincipalLit, payload: bytes, affirmation: Affirmation
) -> bool:
    if hash160(affirmation.pubkey) != principal.key_hash:
        return False
    try:
        point = Point.decode(affirmation.pubkey)
        signature = Signature.decode(affirmation.signature)
    except ValueError:
        return False
    return ecdsa_verify(point, sha256(payload), signature)


@dataclass(frozen=True)
class CheckerContext:
    """Everything to the left of the turnstile: T; Σ; Ψ; Γ; Δ."""

    basis: Basis
    lf_ctx: LFContext = field(default_factory=LFContext)
    persistent: dict[str, Proposition] = field(default_factory=dict)  # Γ
    affine: dict[str, Proposition] = field(default_factory=dict)  # Δ
    txn_payload: bytes | None = None  # T (None outside a transaction)

    def with_affine(self, var: str, prop: Proposition) -> "CheckerContext":
        if var in self.affine or var in self.persistent:
            raise ProofError(f"proof variable {var} shadows an existing hypothesis")
        return replace(self, affine={**self.affine, var: prop})

    def with_persistent(self, var: str, prop: Proposition) -> "CheckerContext":
        if var in self.affine or var in self.persistent:
            raise ProofError(f"proof variable {var} shadows an existing hypothesis")
        return replace(self, persistent={**self.persistent, var: prop})

    def with_lf(self, var: str, family: TypeFamily) -> "CheckerContext":
        return replace(self, lf_ctx=self.lf_ctx.extend(var, family))


# ----------------------------------------------------------------------
# Formation judgements: Σ;Ψ ⊢ A prop and Σ;Ψ ⊢ φ cond
# ----------------------------------------------------------------------


def check_prop_formation(basis: Basis, lf_ctx: LFContext, prop: Proposition) -> None:
    """Judgement Σ;Ψ ⊢ A prop."""
    prof = obs.PROFILER if obs.ENABLED else None
    if prof is not None:
        prof.enter("logic_check")
    try:
        _check_prop_formation(basis, lf_ctx, prop)
    except LFTypeError as exc:
        raise ProofError(f"ill-formed proposition {prop}: {exc}") from exc
    finally:
        if prof is not None:
            prof.exit()


def _check_prop_formation(basis: Basis, lf_ctx: LFContext, prop: Proposition) -> None:
    if isinstance(prop, Atom):
        kind = infer_kind(basis, lf_ctx, prop.family)
        if kind != Kind(KindSort.PROP):
            raise ProofError(f"atom {prop.family} has kind {kind}, expected prop")
        return
    if isinstance(prop, Lolli):
        _check_prop_formation(basis, lf_ctx, prop.antecedent)
        _check_prop_formation(basis, lf_ctx, prop.consequent)
        return
    if isinstance(prop, (Tensor, With, Plus)):
        _check_prop_formation(basis, lf_ctx, prop.left)
        _check_prop_formation(basis, lf_ctx, prop.right)
        return
    if isinstance(prop, (Zero, One)):
        return
    if isinstance(prop, Bang):
        _check_prop_formation(basis, lf_ctx, prop.body)
        return
    if isinstance(prop, (Forall, Exists)):
        check_family_is_type(basis, lf_ctx, prop.domain)
        _check_prop_formation(basis, lf_ctx.extend(prop.var, prop.domain), prop.body)
        return
    if isinstance(prop, Says):
        check_type(basis, lf_ctx, prop.principal, PRINCIPAL_T)
        _check_prop_formation(basis, lf_ctx, prop.body)
        return
    if isinstance(prop, Receipt):
        _check_prop_formation(basis, lf_ctx, prop.prop)
        check_type(basis, lf_ctx, prop.recipient, PRINCIPAL_T)
        return
    if isinstance(prop, IfProp):
        check_condition_formation(basis, lf_ctx, prop.condition)
        _check_prop_formation(basis, lf_ctx, prop.body)
        return
    raise TypeError(f"not a proposition: {prop!r}")


def check_condition_formation(
    basis: Basis, lf_ctx: LFContext, cond: Condition
) -> None:
    """Judgement Σ;Ψ ⊢ φ cond."""
    if isinstance(cond, (CTrue, Spent)):
        return
    if isinstance(cond, CAnd):
        check_condition_formation(basis, lf_ctx, cond.left)
        check_condition_formation(basis, lf_ctx, cond.right)
        return
    if isinstance(cond, CNot):
        check_condition_formation(basis, lf_ctx, cond.body)
        return
    if isinstance(cond, Before):
        try:
            check_type(basis, lf_ctx, cond.time, NAT_T)
        except LFTypeError as exc:
            raise ProofError(f"before() index is not a nat: {exc}") from exc
        return
    raise TypeError(f"not a condition: {cond!r}")


# ----------------------------------------------------------------------
# Proof checking
# ----------------------------------------------------------------------

Used = frozenset


def check_proof(ctx: CheckerContext, term: ProofTerm) -> Proposition:
    """Synthesize the proposition a proof term proves (top-level entry).

    Affine hypotheses may be left unused (weakening), but none may be used
    twice.
    """
    prop, _used = infer(ctx, term)
    return prop


def _disjoint(*sets: Used) -> Used:
    union: set[str] = set()
    for used in sets:
        overlap = union & used
        if overlap:
            raise ProofError(
                f"affine resources used more than once: {sorted(overlap)}"
            )
        union |= used
    return frozenset(union)


def infer(ctx: CheckerContext, term: ProofTerm) -> tuple[Proposition, Used]:
    """The judgement T;Σ;Ψ;Γ;Δ ⊢ M : A, synthesizing A and the consumed set."""
    if cancel.ACTIVE:
        # Cooperative cancellation between proof nodes: an expired
        # service deadline raises DeadlineExceeded here, which is NOT a
        # ProofError — it unwinds through the validation stack as an
        # infrastructure timeout, never as a proof verdict.
        cancel.checkpoint()
    prof = None
    if obs.ENABLED:
        obs.inc("proof.nodes_total")
        prof = obs.PROFILER
        if prof is not None:
            # Per-node recursion collapses to a counter bump in the
            # profiler (same phase at top of stack), so proof checking is
            # not distorted by its own instrumentation.
            prof.enter("logic_check")
    try:
        return _infer(ctx, term)
    finally:
        if prof is not None:
            prof.exit()


def _infer(ctx: CheckerContext, term: ProofTerm) -> tuple[Proposition, Used]:
    if isinstance(term, PVar):
        if term.name in ctx.affine:
            return ctx.affine[term.name], frozenset((term.name,))
        if term.name in ctx.persistent:
            return ctx.persistent[term.name], frozenset()
        raise ProofError(f"unbound proof variable {term.name}")

    if isinstance(term, PConst):
        try:
            decl = ctx.basis.lookup(term.ref)
        except BasisError as exc:
            raise ProofError(str(exc)) from exc
        if not isinstance(decl, PropDecl):
            raise ProofError(f"{term.ref} is not a proof constant")
        return decl.prop, frozenset()

    if isinstance(term, LolliIntro):
        check_prop_formation(ctx.basis, ctx.lf_ctx, term.annotation)
        body_prop, used = infer(ctx.with_affine(term.var, term.annotation), term.body)
        return Lolli(term.annotation, body_prop), used - {term.var}

    if isinstance(term, LolliElim):
        func_prop, func_used = infer(ctx, term.func)
        func_prop = normalize_prop(func_prop)
        if not isinstance(func_prop, Lolli):
            raise ProofError(f"applied non-implication {func_prop}")
        arg_prop, arg_used = infer(ctx, term.arg)
        if not props_equal(func_prop.antecedent, arg_prop):
            raise ProofError(
                f"argument proves {normalize_prop(arg_prop)}, function expects"
                f" {normalize_prop(func_prop.antecedent)}"
            )
        return func_prop.consequent, _disjoint(func_used, arg_used)

    if isinstance(term, TensorIntro):
        left_prop, left_used = infer(ctx, term.left)
        right_prop, right_used = infer(ctx, term.right)
        return Tensor(left_prop, right_prop), _disjoint(left_used, right_used)

    if isinstance(term, TensorElim):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        scrut_prop = normalize_prop(scrut_prop)
        if not isinstance(scrut_prop, Tensor):
            raise ProofError(f"let ⊗ scrutinee proves {scrut_prop}, not a tensor")
        inner = ctx.with_affine(term.left_var, scrut_prop.left).with_affine(
            term.right_var, scrut_prop.right
        )
        body_prop, body_used = infer(inner, term.body)
        return body_prop, _disjoint(
            scrut_used, body_used - {term.left_var, term.right_var}
        )

    if isinstance(term, WithIntro):
        left_prop, left_used = infer(ctx, term.left)
        right_prop, right_used = infer(ctx, term.right)
        # Additive: the alternatives share resources; no disjointness.
        return With(left_prop, right_prop), left_used | right_used

    if isinstance(term, (WithFst, WithSnd)):
        pair_prop, used = infer(ctx, term.body)
        pair_prop = normalize_prop(pair_prop)
        if not isinstance(pair_prop, With):
            raise ProofError(f"projection from non-& proposition {pair_prop}")
        chosen = pair_prop.left if isinstance(term, WithFst) else pair_prop.right
        return chosen, used

    if isinstance(term, PlusInl):
        check_prop_formation(ctx.basis, ctx.lf_ctx, term.other)
        body_prop, used = infer(ctx, term.body)
        return Plus(body_prop, term.other), used

    if isinstance(term, PlusInr):
        check_prop_formation(ctx.basis, ctx.lf_ctx, term.other)
        body_prop, used = infer(ctx, term.body)
        return Plus(term.other, body_prop), used

    if isinstance(term, PlusCase):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        scrut_prop = normalize_prop(scrut_prop)
        if not isinstance(scrut_prop, Plus):
            raise ProofError(f"case scrutinee proves {scrut_prop}, not a ⊕")
        left_prop, left_used = infer(
            ctx.with_affine(term.left_var, scrut_prop.left), term.left_body
        )
        right_prop, right_used = infer(
            ctx.with_affine(term.right_var, scrut_prop.right), term.right_body
        )
        if not props_equal(left_prop, right_prop):
            raise ProofError(
                f"case branches prove different propositions:"
                f" {normalize_prop(left_prop)} vs {normalize_prop(right_prop)}"
            )
        branches_used = (left_used - {term.left_var}) | (
            right_used - {term.right_var}
        )
        return left_prop, _disjoint(scrut_used, branches_used)

    if isinstance(term, OneIntro):
        return One(), frozenset()

    if isinstance(term, OneElim):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        if not isinstance(normalize_prop(scrut_prop), One):
            raise ProofError(f"let ⟨⟩ scrutinee proves {scrut_prop}, not 1")
        body_prop, body_used = infer(ctx, term.body)
        return body_prop, _disjoint(scrut_used, body_used)

    if isinstance(term, ZeroElim):
        check_prop_formation(ctx.basis, ctx.lf_ctx, term.annotation)
        scrut_prop, used = infer(ctx, term.scrutinee)
        if not isinstance(normalize_prop(scrut_prop), Zero):
            raise ProofError(f"abort scrutinee proves {scrut_prop}, not 0")
        return term.annotation, used

    if isinstance(term, BangIntro):
        body_prop, used = infer(ctx, term.body)
        if used:
            raise ProofError(
                f"promotion !M may not consume affine resources, used"
                f" {sorted(used)}"
            )
        return Bang(body_prop), frozenset()

    if isinstance(term, BangElim):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        scrut_prop = normalize_prop(scrut_prop)
        if not isinstance(scrut_prop, Bang):
            raise ProofError(f"let ! scrutinee proves {scrut_prop}, not a !")
        body_prop, body_used = infer(
            ctx.with_persistent(term.var, scrut_prop.body), term.body
        )
        return body_prop, _disjoint(scrut_used, body_used)

    if isinstance(term, ForallIntro):
        check_family_is_type(ctx.basis, ctx.lf_ctx, term.domain)
        _check_eigenvariable(ctx, term.var)
        body_prop, used = infer(ctx.with_lf(term.var, term.domain), term.body)
        return Forall(term.var, term.domain, body_prop), used

    if isinstance(term, ForallElim):
        body_prop, used = infer(ctx, term.body)
        body_prop = normalize_prop(body_prop)
        if not isinstance(body_prop, Forall):
            raise ProofError(f"instantiating non-∀ proposition {body_prop}")
        try:
            check_type(ctx.basis, ctx.lf_ctx, term.arg, body_prop.domain)
        except LFTypeError as exc:
            raise ProofError(f"bad ∀ instantiation: {exc}") from exc
        return substitute_prop(body_prop.body, body_prop.var, term.arg), used

    if isinstance(term, ExistsIntro):
        annotation = normalize_prop(term.annotation)
        if not isinstance(annotation, Exists):
            raise ProofError("pack annotation must be an ∃ proposition")
        check_prop_formation(ctx.basis, ctx.lf_ctx, annotation)
        try:
            check_type(ctx.basis, ctx.lf_ctx, term.witness, annotation.domain)
        except LFTypeError as exc:
            raise ProofError(f"bad ∃ witness: {exc}") from exc
        expected = substitute_prop(annotation.body, annotation.var, term.witness)
        body_prop, used = infer(ctx, term.body)
        if not props_equal(body_prop, expected):
            raise ProofError(
                f"pack body proves {normalize_prop(body_prop)}, annotation"
                f" requires {normalize_prop(expected)}"
            )
        return annotation, used

    if isinstance(term, ExistsElim):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        scrut_prop = normalize_prop(scrut_prop)
        if not isinstance(scrut_prop, Exists):
            raise ProofError(f"unpack scrutinee proves {scrut_prop}, not an ∃")
        _check_eigenvariable(ctx, term.type_var)
        opened = substitute_prop(
            scrut_prop.body, scrut_prop.var, LFVar(term.type_var)
        )
        inner = ctx.with_lf(term.type_var, scrut_prop.domain).with_affine(
            term.proof_var, opened
        )
        body_prop, body_used = infer(inner, term.body)
        if term.type_var in free_vars_prop(body_prop):
            raise ProofError(
                f"existential witness {term.type_var} escapes its scope"
            )
        return body_prop, _disjoint(scrut_used, body_used - {term.proof_var})

    if isinstance(term, SayReturn):
        _check_principal(ctx, term.principal)
        body_prop, used = infer(ctx, term.body)
        return Says(term.principal, body_prop), used

    if isinstance(term, SayBind):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        scrut_prop = normalize_prop(scrut_prop)
        if not isinstance(scrut_prop, Says):
            raise ProofError(f"saybind scrutinee proves {scrut_prop}, not ⟨m⟩A")
        body_prop, body_used = infer(
            ctx.with_affine(term.var, scrut_prop.body), term.body
        )
        body_prop_n = normalize_prop(body_prop)
        if not isinstance(body_prop_n, Says) or not terms_equal(
            body_prop_n.principal, scrut_prop.principal
        ):
            raise ProofError(
                "saybind body must prove an affirmation by the same principal"
            )
        return body_prop, _disjoint(scrut_used, body_used - {term.var})

    if isinstance(term, (Assert, AssertPersistent)):
        _check_principal(ctx, term.principal)
        check_prop_formation(ctx.basis, ctx.lf_ctx, term.prop)
        literal = normalize(term.principal)
        if not isinstance(literal, PrincipalLit):
            raise ProofError("assert principal must be a literal key hash")
        try:
            if isinstance(term, Assert):
                if ctx.txn_payload is None:
                    raise ProofError(
                        "affine assert outside a transaction context"
                    )
                payload = affine_assert_payload(ctx.txn_payload, term.prop)
            else:
                payload = persistent_assert_payload(term.prop)
        except EncodingError as exc:
            raise ProofError(f"cannot sign an open proposition: {exc}") from exc
        if not verify_affirmation(literal, payload, term.affirmation):
            raise ProofError(f"invalid affirmation signature for {literal}")
        return Says(term.principal, term.prop), frozenset()

    if isinstance(term, IfReturn):
        check_condition_formation(ctx.basis, ctx.lf_ctx, term.condition)
        body_prop, used = infer(ctx, term.body)
        return IfProp(term.condition, body_prop), used

    if isinstance(term, IfBind):
        scrut_prop, scrut_used = infer(ctx, term.scrutinee)
        scrut_prop = normalize_prop(scrut_prop)
        if not isinstance(scrut_prop, IfProp):
            raise ProofError(f"ifbind scrutinee proves {scrut_prop}, not if(φ,A)")
        body_prop, body_used = infer(
            ctx.with_affine(term.var, scrut_prop.body), term.body
        )
        body_prop_n = normalize_prop(body_prop)
        if not isinstance(body_prop_n, IfProp) or not conditions_equal(
            body_prop_n.condition, scrut_prop.condition
        ):
            raise ProofError("ifbind body must prove if(φ,B) for the same φ")
        return body_prop, _disjoint(scrut_used, body_used - {term.var})

    if isinstance(term, IfWeaken):
        check_condition_formation(ctx.basis, ctx.lf_ctx, term.condition)
        body_prop, used = infer(ctx, term.body)
        body_prop = normalize_prop(body_prop)
        if not isinstance(body_prop, IfProp):
            raise ProofError(f"ifweaken body proves {body_prop}, not if(φ,A)")
        if not implies(term.condition, body_prop.condition):
            raise ProofError(
                f"ifweaken: {term.condition} does not entail"
                f" {body_prop.condition}"
            )
        return IfProp(term.condition, body_prop.body), used

    if isinstance(term, IfSay):
        body_prop, used = infer(ctx, term.body)
        body_prop = normalize_prop(body_prop)
        if not isinstance(body_prop, Says) or not isinstance(
            normalize_prop(body_prop.body), IfProp
        ):
            raise ProofError(f"if/say body proves {body_prop}, not ⟨m⟩if(φ,A)")
        inner = normalize_prop(body_prop.body)
        assert isinstance(inner, IfProp)
        return IfProp(inner.condition, Says(body_prop.principal, inner.body)), used

    raise TypeError(f"not a proof term: {term!r}")


def _check_principal(ctx: CheckerContext, principal: Term) -> None:
    try:
        check_type(ctx.basis, ctx.lf_ctx, principal, PRINCIPAL_T)
    except LFTypeError as exc:
        raise ProofError(f"not a principal: {exc}") from exc


def _check_eigenvariable(ctx: CheckerContext, var: str) -> None:
    """The variable a ∀-intro or ∃-elim binds must be genuinely new."""
    if var in ctx.lf_ctx:
        raise ProofError(f"eigenvariable {var} shadows an LF variable")
    for hypotheses in (ctx.persistent, ctx.affine):
        for name, prop in hypotheses.items():
            if var in free_vars_prop(prop):
                raise ProofError(
                    f"eigenvariable {var} occurs free in hypothesis {name}"
                )
