"""Propositions of the Typecoin logic (paper Figure 1).

::

    A ::= c m₁…mᵢ | A ⊸ A | A & A | A ⊗ A | A ⊕ A | 0 | 1 | !A
        | ∀u:τ.A | ∃u:τ.A | ⟨m⟩A | receipt(A/n ↠ m) | if(φ, A)

Atomic propositions are LF type families of kind ``prop``.  ⊤ is omitted:
"which is meaningless in affine logic" (§4).  Conditionals if(φ, A) come
from §5.  Equality of propositions is α-equivalence after normalizing the
embedded LF terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Union

from repro.lf.normalize import normalize, normalize_family
from repro.lf.syntax import (
    ConstRef,
    Node,
    Term,
    TypeFamily,
    alpha_equal as lf_alpha_equal,
    free_vars as lf_free_vars,
    fresh_name,
    iter_constants as lf_iter_constants,
    substitute as lf_substitute,
    substitute_this as lf_substitute_this,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.logic.conditions import Condition


@dataclass(frozen=True)
class Atom:
    """An atomic proposition: a type family of kind ``prop``."""

    family: TypeFamily

    def __str__(self) -> str:
        return str(self.family)


@dataclass(frozen=True)
class Lolli:
    """Affine implication A ⊸ B: consumes an A to produce a B."""

    antecedent: "Proposition"
    consequent: "Proposition"

    def __str__(self) -> str:
        return f"({self.antecedent} ⊸ {self.consequent})"


@dataclass(frozen=True)
class Tensor:
    """Simultaneous conjunction A ⊗ B: both together."""

    left: "Proposition"
    right: "Proposition"

    def __str__(self) -> str:
        return f"({self.left} ⊗ {self.right})"


@dataclass(frozen=True)
class With:
    """Additive conjunction A & B: the holder's choice of one."""

    left: "Proposition"
    right: "Proposition"

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Plus:
    """Additive disjunction A ⊕ B: one or the other, producer's choice."""

    left: "Proposition"
    right: "Proposition"

    def __str__(self) -> str:
        return f"({self.left} ⊕ {self.right})"


@dataclass(frozen=True)
class Zero:
    """The impossible resource 0."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True)
class One:
    """The trivial resource 1 (the type of non-Typecoin txouts, §3)."""

    def __str__(self) -> str:
        return "1"


@dataclass(frozen=True)
class Bang:
    """The exponential !A: as many copies of A as desired."""

    body: "Proposition"

    def __str__(self) -> str:
        return f"!{self.body}"


@dataclass(frozen=True)
class Forall:
    """Universal quantification ∀u:τ.A over LF index terms."""

    var: str
    domain: TypeFamily
    body: "Proposition"

    def __str__(self) -> str:
        return f"(∀{self.var}:{self.domain}.{self.body})"


@dataclass(frozen=True)
class Exists:
    """Existential quantification ∃u:τ.A over LF index terms."""

    var: str
    domain: TypeFamily
    body: "Proposition"

    def __str__(self) -> str:
        return f"(∃{self.var}:{self.domain}.{self.body})"


@dataclass(frozen=True)
class Says:
    """The affirmation modality ⟨m⟩A: "the principal m says A"."""

    principal: Term
    body: "Proposition"

    def __str__(self) -> str:
        return f"⟨{self.principal}⟩{self.body}"


@dataclass(frozen=True)
class Receipt:
    """receipt(A/n ↠ K): resources A and n bitcoins were sent to K (§4).

    The pure forms receipt(A ↠ K) and receipt(n ↠ K) are the special cases
    ``amount = 0`` and ``prop = One()`` respectively.
    """

    prop: "Proposition"
    amount: int
    recipient: Term

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("receipt amounts are non-negative satoshis")

    def __str__(self) -> str:
        return f"receipt({self.prop}/{self.amount} ↠ {self.recipient})"


@dataclass(frozen=True)
class IfProp:
    """The conditional if(φ, A): an A, obtainable while φ holds (§5)."""

    condition: "Condition"
    body: "Proposition"

    def __str__(self) -> str:
        return f"if({self.condition}, {self.body})"


Proposition = Union[
    Atom, Lolli, Tensor, With, Plus, Zero, One, Bang, Forall, Exists, Says,
    Receipt, IfProp,
]

_BINARY = (Lolli, Tensor, With, Plus)
_QUANT = (Forall, Exists)
_NULLARY = (Zero, One)


def tensor_all(props: list[Proposition]) -> Proposition:
    """Right-nested tensor of a list; 1 for the empty list.

    Used for A = A₁ ⊗ … ⊗ A_α in the transaction-formation judgement.
    """
    if not props:
        return One()
    result = props[-1]
    for prop in reversed(props[:-1]):
        result = Tensor(prop, result)
    return result


def free_vars_prop(prop: Proposition) -> frozenset[str]:
    """Free LF variables of a proposition."""
    from repro.logic.conditions import free_vars_cond

    if isinstance(prop, Atom):
        return lf_free_vars(prop.family)
    if isinstance(prop, _BINARY):
        left, right = _parts(prop)
        return free_vars_prop(left) | free_vars_prop(right)
    if isinstance(prop, _NULLARY):
        return frozenset()
    if isinstance(prop, Bang):
        return free_vars_prop(prop.body)
    if isinstance(prop, _QUANT):
        return lf_free_vars(prop.domain) | (free_vars_prop(prop.body) - {prop.var})
    if isinstance(prop, Says):
        return lf_free_vars(prop.principal) | free_vars_prop(prop.body)
    if isinstance(prop, Receipt):
        return free_vars_prop(prop.prop) | lf_free_vars(prop.recipient)
    if isinstance(prop, IfProp):
        return free_vars_cond(prop.condition) | free_vars_prop(prop.body)
    raise TypeError(f"not a proposition: {prop!r}")


def _parts(prop: Proposition) -> tuple[Proposition, Proposition]:
    if isinstance(prop, Lolli):
        return prop.antecedent, prop.consequent
    return prop.left, prop.right  # type: ignore[union-attr]


def _rebuild(prop: Proposition, left: Proposition, right: Proposition) -> Proposition:
    if isinstance(prop, Lolli):
        return Lolli(left, right)
    return type(prop)(left, right)  # type: ignore[call-arg]


def substitute_prop(prop: Proposition, var: str, replacement: Term) -> Proposition:
    """Capture-avoiding substitution of an LF term into a proposition."""
    from repro.logic.conditions import substitute_cond

    if isinstance(prop, Atom):
        return Atom(lf_substitute(prop.family, var, replacement))
    if isinstance(prop, _BINARY):
        left, right = _parts(prop)
        return _rebuild(
            prop,
            substitute_prop(left, var, replacement),
            substitute_prop(right, var, replacement),
        )
    if isinstance(prop, _NULLARY):
        return prop
    if isinstance(prop, Bang):
        return Bang(substitute_prop(prop.body, var, replacement))
    if isinstance(prop, _QUANT):
        domain = lf_substitute(prop.domain, var, replacement)
        if prop.var == var:
            return type(prop)(prop.var, domain, prop.body)
        if prop.var in lf_free_vars(replacement):
            renamed = fresh_name(prop.var)
            from repro.lf.syntax import Var as LFVar

            body = substitute_prop(prop.body, prop.var, LFVar(renamed))
            body = substitute_prop(body, var, replacement)
            return type(prop)(renamed, domain, body)
        return type(prop)(
            prop.var, domain, substitute_prop(prop.body, var, replacement)
        )
    if isinstance(prop, Says):
        return Says(
            lf_substitute(prop.principal, var, replacement),
            substitute_prop(prop.body, var, replacement),
        )
    if isinstance(prop, Receipt):
        return Receipt(
            substitute_prop(prop.prop, var, replacement),
            prop.amount,
            lf_substitute(prop.recipient, var, replacement),
        )
    if isinstance(prop, IfProp):
        return IfProp(
            substitute_cond(prop.condition, var, replacement),
            substitute_prop(prop.body, var, replacement),
        )
    raise TypeError(f"not a proposition: {prop!r}")


def substitute_this_prop(prop: Proposition, txid: bytes) -> Proposition:
    """Resolve ``this`` references throughout a proposition."""
    from repro.logic.conditions import substitute_this_cond

    if isinstance(prop, Atom):
        return Atom(lf_substitute_this(prop.family, txid))
    if isinstance(prop, _BINARY):
        left, right = _parts(prop)
        return _rebuild(
            prop,
            substitute_this_prop(left, txid),
            substitute_this_prop(right, txid),
        )
    if isinstance(prop, _NULLARY):
        return prop
    if isinstance(prop, Bang):
        return Bang(substitute_this_prop(prop.body, txid))
    if isinstance(prop, _QUANT):
        return type(prop)(
            prop.var,
            lf_substitute_this(prop.domain, txid),
            substitute_this_prop(prop.body, txid),
        )
    if isinstance(prop, Says):
        return Says(
            lf_substitute_this(prop.principal, txid),
            substitute_this_prop(prop.body, txid),
        )
    if isinstance(prop, Receipt):
        return Receipt(
            substitute_this_prop(prop.prop, txid),
            prop.amount,
            lf_substitute_this(prop.recipient, txid),
        )
    if isinstance(prop, IfProp):
        return IfProp(
            substitute_this_cond(prop.condition, txid),
            substitute_this_prop(prop.body, txid),
        )
    raise TypeError(f"not a proposition: {prop!r}")


def normalize_prop(prop: Proposition) -> Proposition:
    """Normalize all embedded LF terms (β and arithmetic δ)."""
    from repro.logic.conditions import normalize_cond

    if isinstance(prop, Atom):
        return Atom(normalize_family(prop.family))
    if isinstance(prop, _BINARY):
        left, right = _parts(prop)
        return _rebuild(prop, normalize_prop(left), normalize_prop(right))
    if isinstance(prop, _NULLARY):
        return prop
    if isinstance(prop, Bang):
        return Bang(normalize_prop(prop.body))
    if isinstance(prop, _QUANT):
        return type(prop)(
            prop.var, normalize_family(prop.domain), normalize_prop(prop.body)
        )
    if isinstance(prop, Says):
        return Says(normalize(prop.principal), normalize_prop(prop.body))
    if isinstance(prop, Receipt):
        return Receipt(
            normalize_prop(prop.prop), prop.amount, normalize(prop.recipient)
        )
    if isinstance(prop, IfProp):
        return IfProp(normalize_cond(prop.condition), normalize_prop(prop.body))
    raise TypeError(f"not a proposition: {prop!r}")


def alpha_equal_prop(a: Proposition, b: Proposition) -> bool:
    """Syntactic equality up to renaming of bound LF variables."""
    return _alpha_prop(a, b, {}, {})


def _alpha_prop(a: Proposition, b: Proposition, env_a: dict, env_b: dict) -> bool:
    from repro.logic.conditions import _alpha_cond

    if type(a) is not type(b):
        return False
    if isinstance(a, Atom):
        return _alpha_node(a.family, b.family, env_a, env_b)
    if isinstance(a, _BINARY):
        la, ra = _parts(a)
        lb, rb = _parts(b)
        return _alpha_prop(la, lb, env_a, env_b) and _alpha_prop(ra, rb, env_a, env_b)
    if isinstance(a, _NULLARY):
        return True
    if isinstance(a, Bang):
        return _alpha_prop(a.body, b.body, env_a, env_b)
    if isinstance(a, _QUANT):
        if not _alpha_node(a.domain, b.domain, env_a, env_b):
            return False
        marker = object()
        return _alpha_prop(
            a.body, b.body, {**env_a, a.var: marker}, {**env_b, b.var: marker}
        )
    if isinstance(a, Says):
        return _alpha_node(a.principal, b.principal, env_a, env_b) and _alpha_prop(
            a.body, b.body, env_a, env_b
        )
    if isinstance(a, Receipt):
        return (
            a.amount == b.amount
            and _alpha_prop(a.prop, b.prop, env_a, env_b)
            and _alpha_node(a.recipient, b.recipient, env_a, env_b)
        )
    if isinstance(a, IfProp):
        return _alpha_cond(a.condition, b.condition, env_a, env_b) and _alpha_prop(
            a.body, b.body, env_a, env_b
        )
    raise TypeError(f"not a proposition: {a!r}")


def _alpha_node(a: Node, b: Node, env_a: dict, env_b: dict) -> bool:
    from repro.lf.syntax import _alpha

    return _alpha(a, b, env_a, env_b)


def props_equal(a: Proposition, b: Proposition) -> bool:
    """Definitional equality: α-equivalence of normalized propositions."""
    return alpha_equal_prop(normalize_prop(a), normalize_prop(b))


def iter_constants_prop(prop: Proposition) -> Iterator[ConstRef]:
    """Every constant reference occurring in a proposition."""
    from repro.logic.conditions import iter_constants_cond

    if isinstance(prop, Atom):
        yield from lf_iter_constants(prop.family)
        return
    if isinstance(prop, _BINARY):
        left, right = _parts(prop)
        yield from iter_constants_prop(left)
        yield from iter_constants_prop(right)
        return
    if isinstance(prop, _NULLARY):
        return
    if isinstance(prop, Bang):
        yield from iter_constants_prop(prop.body)
        return
    if isinstance(prop, _QUANT):
        yield from lf_iter_constants(prop.domain)
        yield from iter_constants_prop(prop.body)
        return
    if isinstance(prop, Says):
        yield from lf_iter_constants(prop.principal)
        yield from iter_constants_prop(prop.body)
        return
    if isinstance(prop, Receipt):
        yield from iter_constants_prop(prop.prop)
        yield from lf_iter_constants(prop.recipient)
        return
    if isinstance(prop, IfProp):
        yield from iter_constants_cond(prop.condition)
        yield from iter_constants_prop(prop.body)
        return
    raise TypeError(f"not a proposition: {prop!r}")
