"""The freshness check (paper §4 and Appendix A).

"Each constant's sort ... must be restricted so that no transaction can make
declarations that change the meanings of non-local constants.  This check,
called the *freshness check*, requires that any *restricted form* must
appear on the left-hand side of a lolli or universal quantifier.  Thus,
restricted forms can be consumed but not produced.  Restricted forms
include non-local constants, the proposition 0, affirmations, and
receipts."

The rules are *positive*: there are simply no freshness rules for the
restricted forms, so a derivation exists exactly when every head position is
safe.  Local bases and affine grants must both pass.
"""

from __future__ import annotations

from repro.lf.basis import Basis, KindDecl, PropDecl, TypeDecl
from repro.lf.syntax import KindT, TApp, TConst, TPi, TypeFamily
from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
)


class FreshnessError(Exception):
    """A basis or affine grant tries to produce a restricted form."""


def family_fresh(family: TypeFamily) -> bool:
    """τ fresh (Appendix A).

    * this.ℓ fresh — only locally-declared family heads;
    * τ m fresh when τ fresh — arguments are unrestricted;
    * Πx:τ.τ′ fresh when τ′ fresh — domains are unrestricted (left of Π).
    """
    if isinstance(family, TConst):
        return family.ref.is_local
    if isinstance(family, TApp):
        return family_fresh(family.family)
    if isinstance(family, TPi):
        return family_fresh(family.body)
    raise TypeError(f"not an LF family: {family!r}")


def prop_fresh(prop: Proposition) -> bool:
    """A fresh (Appendix A).

    Restricted forms — non-local atoms, 0, affirmations ⟨m⟩A, and receipts —
    have no rule and are therefore never fresh; everything to the left of a
    ⊸ (and quantifier domains) is unrestricted.
    """
    if isinstance(prop, Atom):
        return family_fresh(prop.family)
    if isinstance(prop, Lolli):
        return prop_fresh(prop.consequent)  # antecedent unrestricted
    if isinstance(prop, (Tensor, With, Plus)):
        return prop_fresh(prop.left) and prop_fresh(prop.right)
    if isinstance(prop, Zero):
        return False  # restricted form
    if isinstance(prop, One):
        return True
    if isinstance(prop, Bang):
        return prop_fresh(prop.body)
    if isinstance(prop, Forall):
        return prop_fresh(prop.body)  # domain unrestricted
    if isinstance(prop, Exists):
        return family_fresh(prop.domain) and prop_fresh(prop.body)
    if isinstance(prop, Says):
        return False  # affirmations are restricted
    if isinstance(prop, Receipt):
        return False  # receipts are restricted
    if isinstance(prop, IfProp):
        return prop_fresh(prop.body)
    raise TypeError(f"not a proposition: {prop!r}")


def kind_fresh(_kind: KindT) -> bool:
    """Kinds are always fresh: declaring a new family is harmless
    (Appendix A: ``Σ, this.ℓ:k fresh`` has no premise on k)."""
    return True


def is_fresh(sort) -> bool:
    """Freshness of a declaration sort (kind, family, or proposition)."""
    if isinstance(sort, KindDecl):
        return kind_fresh(sort.kind)
    if isinstance(sort, TypeDecl):
        return family_fresh(sort.family)
    if isinstance(sort, PropDecl):
        return prop_fresh(sort.prop)
    raise TypeError(f"not a declaration: {sort!r}")


def check_prop_fresh(prop: Proposition, role: str = "affine grant") -> None:
    """Raise unless A fresh (used for the affine grant C)."""
    if not prop_fresh(prop):
        raise FreshnessError(f"{role} fails the freshness check: {prop}")


def check_basis_fresh(basis: Basis) -> None:
    """Σ fresh: every declaration local and individually fresh."""
    for ref, decl in basis:
        if not ref.is_local:
            raise FreshnessError(
                f"local basis may only declare this.* constants, got {ref}"
            )
        if not is_fresh(decl):
            raise FreshnessError(f"declaration {ref} fails the freshness check")
