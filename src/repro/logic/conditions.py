"""Conditions and their entailment (paper §5, Figure 2, Appendix A).

::

    φ ::= true | φ ∧ φ | ¬φ | before(t) | spent(txid.n)

"The essential property of all conditions φ is that there be unambiguous
evidence of the truth or falsity of φ for any particular transaction in the
blockchain."  Two relations live here:

* **entailment** Φ ⊃ Φ′ — the classical sequent calculus of Appendix A,
  used by ``ifweaken``;
* **evaluation** against a :class:`WorldView` (a timestamp plus a
  spent-txout oracle) — used when a transaction discharges its top-level
  conditional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Union

from repro.lf.normalize import normalize
from repro.lf.syntax import (
    ConstRef,
    NatLit,
    Term,
    _alpha,
    free_vars as lf_free_vars,
    iter_constants as lf_iter_constants,
    substitute as lf_substitute,
    substitute_this as lf_substitute_this,
)


@dataclass(frozen=True)
class CTrue:
    """The trivially true condition."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class CAnd:
    """Conjunction φ₁ ∧ φ₂."""

    left: "Condition"
    right: "Condition"

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class CNot:
    """Negation ¬φ (used with spent for revocation, §5)."""

    body: "Condition"

    def __str__(self) -> str:
        return f"¬{self.body}"


@dataclass(frozen=True)
class Before:
    """before(t): holds in any transaction whose block time is earlier
    than t.  The time index is an LF term of type nat."""

    time: Term

    def __str__(self) -> str:
        return f"before({self.time})"


@dataclass(frozen=True)
class Spent:
    """spent(txid.n): the n-th output of txid has been spent."""

    txid: bytes
    index: int

    def __post_init__(self) -> None:
        if len(self.txid) != 32:
            raise ValueError("spent conditions name 32-byte txids")
        if self.index < 0:
            raise ValueError("output index must be non-negative")

    def __str__(self) -> str:
        return f"spent({self.txid[:4].hex()}….{self.index})"


Condition = Union[CTrue, CAnd, CNot, Before, Spent]


def conjoin(conditions: list[Condition]) -> Condition:
    """The conjunction of a list of conditions (true if empty), flattened
    of redundant trues."""
    useful = [c for c in conditions if not isinstance(c, CTrue)]
    if not useful:
        return CTrue()
    result = useful[-1]
    for cond in reversed(useful[:-1]):
        result = CAnd(cond, result)
    return result


# ----------------------------------------------------------------------
# Structure-generic helpers
# ----------------------------------------------------------------------


def free_vars_cond(cond: Condition) -> frozenset[str]:
    if isinstance(cond, (CTrue, Spent)):
        return frozenset()
    if isinstance(cond, CAnd):
        return free_vars_cond(cond.left) | free_vars_cond(cond.right)
    if isinstance(cond, CNot):
        return free_vars_cond(cond.body)
    if isinstance(cond, Before):
        return lf_free_vars(cond.time)
    raise TypeError(f"not a condition: {cond!r}")


def substitute_cond(cond: Condition, var: str, replacement: Term) -> Condition:
    if isinstance(cond, (CTrue, Spent)):
        return cond
    if isinstance(cond, CAnd):
        return CAnd(
            substitute_cond(cond.left, var, replacement),
            substitute_cond(cond.right, var, replacement),
        )
    if isinstance(cond, CNot):
        return CNot(substitute_cond(cond.body, var, replacement))
    if isinstance(cond, Before):
        return Before(lf_substitute(cond.time, var, replacement))
    raise TypeError(f"not a condition: {cond!r}")


def substitute_this_cond(cond: Condition, txid: bytes) -> Condition:
    if isinstance(cond, (CTrue, Spent)):
        return cond
    if isinstance(cond, CAnd):
        return CAnd(
            substitute_this_cond(cond.left, txid),
            substitute_this_cond(cond.right, txid),
        )
    if isinstance(cond, CNot):
        return CNot(substitute_this_cond(cond.body, txid))
    if isinstance(cond, Before):
        return Before(lf_substitute_this(cond.time, txid))
    raise TypeError(f"not a condition: {cond!r}")


def normalize_cond(cond: Condition) -> Condition:
    if isinstance(cond, (CTrue, Spent)):
        return cond
    if isinstance(cond, CAnd):
        return CAnd(normalize_cond(cond.left), normalize_cond(cond.right))
    if isinstance(cond, CNot):
        return CNot(normalize_cond(cond.body))
    if isinstance(cond, Before):
        return Before(normalize(cond.time))
    raise TypeError(f"not a condition: {cond!r}")


def _alpha_cond(a: Condition, b: Condition, env_a: dict, env_b: dict) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, CTrue):
        return True
    if isinstance(a, CAnd):
        return _alpha_cond(a.left, b.left, env_a, env_b) and _alpha_cond(
            a.right, b.right, env_a, env_b
        )
    if isinstance(a, CNot):
        return _alpha_cond(a.body, b.body, env_a, env_b)
    if isinstance(a, Before):
        return _alpha(a.time, b.time, env_a, env_b)
    if isinstance(a, Spent):
        return a.txid == b.txid and a.index == b.index
    raise TypeError(f"not a condition: {a!r}")


def conditions_equal(a: Condition, b: Condition) -> bool:
    return _alpha_cond(normalize_cond(a), normalize_cond(b), {}, {})


def iter_constants_cond(cond: Condition) -> Iterator[ConstRef]:
    if isinstance(cond, (CTrue, Spent)):
        return
    if isinstance(cond, CAnd):
        yield from iter_constants_cond(cond.left)
        yield from iter_constants_cond(cond.right)
        return
    if isinstance(cond, CNot):
        yield from iter_constants_cond(cond.body)
        return
    if isinstance(cond, Before):
        yield from lf_iter_constants(cond.time)
        return
    raise TypeError(f"not a condition: {cond!r}")


# ----------------------------------------------------------------------
# Entailment Φ ⊃ Φ′ — Appendix A's classical sequent calculus
# ----------------------------------------------------------------------


def entails(antecedents: list[Condition], consequents: list[Condition]) -> bool:
    """Decide the sequent Φ ⊃ Φ′.

    The calculus is classical: ∧ decomposes on both sides, ¬ swaps sides,
    ``true`` succeeds on the right, identical atoms close a branch, and
    ``before(t) ⊃ before(t′)`` closes when t ≤ t′ (comparable only for
    literal times; symbolic times close by equality via the identity rule).
    """
    left = [normalize_cond(c) for c in antecedents]
    right = [normalize_cond(c) for c in consequents]
    return _prove(left, right)


def _prove(left: list[Condition], right: list[Condition]) -> bool:
    # Decompose left.
    for i, cond in enumerate(left):
        rest = left[:i] + left[i + 1 :]
        if isinstance(cond, CTrue):
            return _prove(rest, right)
        if isinstance(cond, CAnd):
            return _prove(rest + [cond.left, cond.right], right)
        if isinstance(cond, CNot):
            return _prove(rest, right + [cond.body])
    # Decompose right.
    for i, cond in enumerate(right):
        rest = right[:i] + right[i + 1 :]
        if isinstance(cond, CTrue):
            return True
        if isinstance(cond, CAnd):
            return _prove(left, rest + [cond.left]) and _prove(
                left, rest + [cond.right]
            )
        if isinstance(cond, CNot):
            return _prove(left + [cond.body], rest)
    # Atomic sequent: identity or the before axiom.
    for l_atom in left:
        for r_atom in right:
            if _alpha_cond(l_atom, r_atom, {}, {}):
                return True
            if isinstance(l_atom, Before) and isinstance(r_atom, Before):
                if (
                    isinstance(l_atom.time, NatLit)
                    and isinstance(r_atom.time, NatLit)
                    and l_atom.time.value <= r_atom.time.value
                ):
                    return True
    return False


def implies(premise: Condition, conclusion: Condition) -> bool:
    """φ ⊃ φ′ as a binary relation (what ``ifweaken`` consults)."""
    return entails([premise], [conclusion])


# ----------------------------------------------------------------------
# Evaluation against a world view
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorldView:
    """Enough of the blockchain to decide any condition: the time the
    transaction would carry, and the spent-txout oracle (§5: "Recall that
    Bitcoin maintains a table of all unspent txouts")."""

    time: int
    spent_oracle: Callable[[bytes, int], bool]

    @staticmethod
    def at_time(time: int) -> "WorldView":
        """A world with no spent outputs (handy in tests)."""
        return WorldView(time=time, spent_oracle=lambda _txid, _n: False)


class ConditionUndecidable(Exception):
    """A condition contains free variables and cannot be evaluated."""


def evaluate(cond: Condition, world: WorldView) -> bool:
    """Decide φ in a world.  Raises :class:`ConditionUndecidable` when a
    ``before`` index is not a closed literal."""
    cond = normalize_cond(cond)
    if isinstance(cond, CTrue):
        return True
    if isinstance(cond, CAnd):
        return evaluate(cond.left, world) and evaluate(cond.right, world)
    if isinstance(cond, CNot):
        return not evaluate(cond.body, world)
    if isinstance(cond, Before):
        if not isinstance(cond.time, NatLit):
            raise ConditionUndecidable(f"non-literal time in {cond}")
        return world.time < cond.time.value
    if isinstance(cond, Spent):
        return world.spent_oracle(cond.txid, cond.index)
    raise TypeError(f"not a condition: {cond!r}")
