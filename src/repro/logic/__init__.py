"""The Typecoin affine authorization logic (paper §4, §5, Appendix A).

Propositions are dual intuitionistic linear logic (minus ⊤, which "is
meaningless in affine logic") over LF index terms, extended with universal
and existential quantification, the affirmation modality ⟨K⟩A, receipts,
and the conditional monad if(φ, A).  Proof terms are checked by
:mod:`repro.logic.checker` under the thirteen judgements of Appendix A;
conditions have both an entailment relation (a classical sequent calculus)
and a world-relative evaluation used at transaction-validation time.
"""

from repro.logic.propositions import (
    Atom,
    Bang,
    Exists,
    Forall,
    IfProp,
    Lolli,
    One,
    Plus,
    Proposition,
    Receipt,
    Says,
    Tensor,
    With,
    Zero,
    alpha_equal_prop,
    free_vars_prop,
    normalize_prop,
    props_equal,
    substitute_prop,
    substitute_this_prop,
    tensor_all,
)
from repro.logic.conditions import (
    Before,
    CAnd,
    CNot,
    CTrue,
    Condition,
    Spent,
    WorldView,
    conjoin,
    entails,
    evaluate,
    substitute_this_cond,
)
from repro.logic.freshness import FreshnessError, check_basis_fresh, check_prop_fresh, is_fresh
from repro.logic.proofterms import (
    Affirmation,
    Assert,
    AssertPersistent,
    BangElim,
    BangIntro,
    ExistsElim,
    ExistsIntro,
    ForallElim,
    ForallIntro,
    IfBind,
    IfReturn,
    IfSay,
    IfWeaken,
    LolliElim,
    LolliIntro,
    OneElim,
    OneIntro,
    PConst,
    PlusCase,
    PlusInl,
    PlusInr,
    ProofTerm,
    PVar,
    SayBind,
    SayReturn,
    TensorElim,
    TensorIntro,
    WithFst,
    WithIntro,
    WithSnd,
    ZeroElim,
    let_,
)
from repro.logic.checker import (
    CheckerContext,
    ProofError,
    check_condition_formation,
    check_proof,
    check_prop_formation,
    infer,
)

__all__ = [
    # propositions
    "Atom", "Bang", "Exists", "Forall", "IfProp", "Lolli", "One", "Plus",
    "Proposition", "Receipt", "Says", "Tensor", "With", "Zero",
    "alpha_equal_prop", "free_vars_prop", "normalize_prop", "props_equal",
    "substitute_prop", "substitute_this_prop", "tensor_all",
    # conditions
    "Before", "CAnd", "CNot", "CTrue", "Condition", "Spent", "WorldView",
    "conjoin", "entails", "evaluate", "substitute_this_cond",
    # freshness
    "FreshnessError", "check_basis_fresh", "check_prop_fresh", "is_fresh",
    # proof terms
    "Affirmation", "Assert", "AssertPersistent", "BangElim", "BangIntro",
    "ExistsElim", "ExistsIntro", "ForallElim", "ForallIntro", "IfBind",
    "IfReturn", "IfSay", "IfWeaken", "LolliElim", "LolliIntro", "OneElim",
    "OneIntro", "PConst", "PlusCase", "PlusInl", "PlusInr", "ProofTerm",
    "PVar", "SayBind", "SayReturn", "TensorElim", "TensorIntro", "WithFst",
    "WithIntro", "WithSnd", "ZeroElim", "let_",
    # checker
    "CheckerContext", "ProofError", "check_condition_formation",
    "check_proof", "check_prop_formation", "infer",
]
