"""Proof terms of the affine logic (paper §4, Figure 1).

"Most of the proof terms are the standard proof terms of affine logic.  In
addition, there are four forms for affirmation [sayreturn, saybind, assert,
assert!]" plus the four conditional-monad forms of §5 (ifreturn, ifbind,
ifweaken, if/say).

Introduction forms carry enough annotations that checking is syntax-directed
type *synthesis*; :mod:`repro.logic.checker` implements the judgement
``T;Σ;Ψ;Γ;Δ ⊢ M : A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.lf.syntax import ConstRef, Term, TypeFamily

if TYPE_CHECKING:  # pragma: no cover
    from repro.logic.conditions import Condition
    from repro.logic.propositions import Proposition


@dataclass(frozen=True)
class Affirmation:
    """A digital signature packaged with the public key that made it.

    Principals are key *hashes* (paper §4 fn. 6), so signatures must carry
    the preimage key for verification.
    """

    pubkey: bytes  # compressed SEC1 encoding
    signature: bytes  # 64-byte compact ECDSA


@dataclass(frozen=True)
class PVar:
    """A proof variable (affine from Δ or persistent from Γ)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PConst:
    """A proof constant declared in a basis (persistent)."""

    ref: ConstRef

    def __str__(self) -> str:
        return str(self.ref)


@dataclass(frozen=True)
class LolliIntro:
    """λx:A.M : A ⊸ B."""

    var: str
    annotation: "Proposition"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"(λ{self.var}:{self.annotation}.{self.body})"


@dataclass(frozen=True)
class LolliElim:
    """M N : B where M : A ⊸ B and N : A (disjoint resources)."""

    func: "ProofTerm"
    arg: "ProofTerm"

    def __str__(self) -> str:
        return f"({self.func} {self.arg})"


@dataclass(frozen=True)
class TensorIntro:
    """M ⊗ N : A ⊗ B (disjoint resources)."""

    left: "ProofTerm"
    right: "ProofTerm"

    def __str__(self) -> str:
        return f"({self.left} ⊗ {self.right})"


@dataclass(frozen=True)
class TensorElim:
    """let x ⊗ y = M in N."""

    left_var: str
    right_var: str
    scrutinee: "ProofTerm"
    body: "ProofTerm"

    def __str__(self) -> str:
        return (
            f"(let {self.left_var}⊗{self.right_var} = {self.scrutinee}"
            f" in {self.body})"
        )


@dataclass(frozen=True)
class WithIntro:
    """(M, N) : A & B — both alternatives over the *same* resources."""

    left: "ProofTerm"
    right: "ProofTerm"

    def __str__(self) -> str:
        return f"({self.left}, {self.right})"


@dataclass(frozen=True)
class WithFst:
    """fst M : A from M : A & B."""

    body: "ProofTerm"

    def __str__(self) -> str:
        return f"fst {self.body}"


@dataclass(frozen=True)
class WithSnd:
    """snd M : B from M : A & B."""

    body: "ProofTerm"

    def __str__(self) -> str:
        return f"snd {self.body}"


@dataclass(frozen=True)
class PlusInl:
    """inl M : A ⊕ B (annotated with the absent side B)."""

    other: "Proposition"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"inl {self.body}"


@dataclass(frozen=True)
class PlusInr:
    """inr M : A ⊕ B (annotated with the absent side A)."""

    other: "Proposition"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"inr {self.body}"


@dataclass(frozen=True)
class PlusCase:
    """case M of inl x ⇒ N₁ | inr y ⇒ N₂ (branches share resources)."""

    scrutinee: "ProofTerm"
    left_var: str
    left_body: "ProofTerm"
    right_var: str
    right_body: "ProofTerm"

    def __str__(self) -> str:
        return (
            f"(case {self.scrutinee} of inl {self.left_var} ⇒ {self.left_body}"
            f" | inr {self.right_var} ⇒ {self.right_body})"
        )


@dataclass(frozen=True)
class OneIntro:
    """⟨⟩ : 1."""

    def __str__(self) -> str:
        return "⟨⟩"


@dataclass(frozen=True)
class OneElim:
    """let ⟨⟩ = M in N."""

    scrutinee: "ProofTerm"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"(let ⟨⟩ = {self.scrutinee} in {self.body})"


@dataclass(frozen=True)
class ZeroElim:
    """abort M : C for any C, from M : 0."""

    scrutinee: "ProofTerm"
    annotation: "Proposition"

    def __str__(self) -> str:
        return f"abort {self.scrutinee}"


@dataclass(frozen=True)
class BangIntro:
    """!M : !A — promotion; M may use no affine resources."""

    body: "ProofTerm"

    def __str__(self) -> str:
        return f"!{self.body}"


@dataclass(frozen=True)
class BangElim:
    """let !x = M in N — x becomes a persistent hypothesis in N."""

    var: str
    scrutinee: "ProofTerm"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"(let !{self.var} = {self.scrutinee} in {self.body})"


@dataclass(frozen=True)
class ForallIntro:
    """Λu:τ.M : ∀u:τ.A."""

    var: str
    domain: TypeFamily
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"(Λ{self.var}:{self.domain}.{self.body})"


@dataclass(frozen=True)
class ForallElim:
    """M [m] : [m/u]A from M : ∀u:τ.A."""

    body: "ProofTerm"
    arg: Term

    def __str__(self) -> str:
        return f"({self.body} [{self.arg}])"


@dataclass(frozen=True)
class ExistsIntro:
    """pack(m, M) as ∃u:τ.A (the annotation fixes A)."""

    annotation: "Proposition"  # the Exists proposition being introduced
    witness: Term
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"pack({self.witness}, {self.body})"


@dataclass(frozen=True)
class ExistsElim:
    """let (u, x) = unpack M in N."""

    type_var: str
    proof_var: str
    scrutinee: "ProofTerm"
    body: "ProofTerm"

    def __str__(self) -> str:
        return (
            f"(let ({self.type_var}, {self.proof_var}) ="
            f" unpack {self.scrutinee} in {self.body})"
        )


@dataclass(frozen=True)
class SayReturn:
    """sayreturnₘ(M) : ⟨m⟩A — every principal affirms everything provable."""

    principal: Term
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"sayreturn_{self.principal}({self.body})"


@dataclass(frozen=True)
class SayBind:
    """saybind x ← M₁ in M₂ : ⟨m⟩B — reason under an affirmation."""

    var: str
    scrutinee: "ProofTerm"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"(saybind {self.var} ← {self.scrutinee} in {self.body})"


@dataclass(frozen=True)
class Assert:
    """assert(K, A, sig) : ⟨K⟩A — affine affirmation; the signature covers
    the enclosing transaction, so it cannot be replayed elsewhere."""

    principal: Term  # must normalize to a PrincipalLit
    prop: "Proposition"
    affirmation: Affirmation

    def __str__(self) -> str:
        return f"assert({self.principal}, {self.prop}, …)"


@dataclass(frozen=True)
class AssertPersistent:
    """assert!(K, A, sig) : ⟨K⟩A — persistent affirmation; the signature
    covers only A, so it may be lifted out of its transaction."""

    principal: Term
    prop: "Proposition"
    affirmation: Affirmation

    def __str__(self) -> str:
        return f"assert!({self.principal}, {self.prop}, …)"


@dataclass(frozen=True)
class IfReturn:
    """ifreturn_φ(M) : if(φ, A) — weaken any A into a conditional."""

    condition: "Condition"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"ifreturn_{self.condition}({self.body})"


@dataclass(frozen=True)
class IfBind:
    """ifbind x ← M₁ in M₂ : if(φ, B)."""

    var: str
    scrutinee: "ProofTerm"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"(ifbind {self.var} ← {self.scrutinee} in {self.body})"


@dataclass(frozen=True)
class IfWeaken:
    """ifweaken_φ(M) : if(φ, A) from M : if(φ′, A), when φ ⊃ φ′."""

    condition: "Condition"
    body: "ProofTerm"

    def __str__(self) -> str:
        return f"ifweaken_{self.condition}({self.body})"


@dataclass(frozen=True)
class IfSay:
    """if/say(M) : if(φ, ⟨m⟩A) from M : ⟨m⟩if(φ, A).

    The commutation runs only this direction; "the opposite direction ...
    is semantically dubious and we do not include it" (§5).
    """

    body: "ProofTerm"

    def __str__(self) -> str:
        return f"if/say({self.body})"


ProofTerm = Union[
    PVar, PConst, LolliIntro, LolliElim, TensorIntro, TensorElim, WithIntro,
    WithFst, WithSnd, PlusInl, PlusInr, PlusCase, OneIntro, OneElim, ZeroElim,
    BangIntro, BangElim, ForallIntro, ForallElim, ExistsIntro, ExistsElim,
    SayReturn, SayBind, Assert, AssertPersistent, IfReturn, IfBind, IfWeaken,
    IfSay,
]


def let_(var: str, annotation: "Proposition", value: ProofTerm, body: ProofTerm) -> ProofTerm:
    """``let x : A ← M in N`` — "a derived form built from lambda and
    application" (paper §6.1, Figure 3)."""
    return LolliElim(LolliIntro(var, annotation, body), value)
