"""Capped exponential backoff with seeded jitter.

One tiny, dependency-free home for the retry-delay math shared by the
P2P catch-up sync (:mod:`repro.bitcoin.sync`) and the verification
service's client (:mod:`repro.service.client`).  Two failure patterns
motivate it, both surveyed at length for layer-2 Bitcoin protocols:

* **unbounded exponential growth** — a plain ``base * factor**n`` retry
  schedule quickly grows past any useful timeout, so the sequence is
  clamped at ``cap``;
* **retry synchronization** — peers that observed the same failure at
  the same moment retry in lockstep, re-creating the overload that
  failed them ("request storms").  Multiplicative jitter drawn from a
  *seeded* RNG decorrelates them while keeping every run reproducible.

Jitter is multiplicative-around-the-nominal (``delay * U[1-j, 1+j]``)
rather than AWS-style full jitter (``U[0, delay]``): these delays double
as *timeouts*, and a near-zero timeout would manufacture spurious
failures.
"""

from __future__ import annotations

import random

__all__ = ["backoff_delay", "backoff_sequence", "derive_rng"]


def backoff_delay(
    attempt: int,
    *,
    base: float,
    cap: float,
    factor: float = 2.0,
    jitter: float = 0.0,
    rng: random.Random | None = None,
) -> float:
    """The delay (or timeout) to use for retry ``attempt`` (1-based).

    ``min(cap, base * factor**(attempt-1))``, then jittered by a factor
    drawn uniformly from ``[1 - jitter, 1 + jitter]`` when an ``rng`` is
    supplied.  The jitter draw happens **only** when both ``jitter > 0``
    and ``rng`` is given, so jitter-free callers don't perturb any
    random stream.
    """
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    delay = min(cap, base * factor ** (attempt - 1))
    if jitter > 0.0 and rng is not None:
        delay *= rng.uniform(1.0 - jitter, 1.0 + jitter)
    return delay


def backoff_sequence(
    attempts: int,
    *,
    base: float,
    cap: float,
    factor: float = 2.0,
    jitter: float = 0.0,
    rng: random.Random | None = None,
) -> list[float]:
    """The first ``attempts`` delays of one backoff schedule."""
    return [
        backoff_delay(
            n, base=base, cap=cap, factor=factor, jitter=jitter, rng=rng
        )
        for n in range(1, attempts + 1)
    ]


def derive_rng(*parts: object) -> random.Random:
    """A deterministic RNG derived from the given identity parts.

    Seeding goes through a string (``random.seed`` hashes str seeds with
    SHA-512), **not** a tuple — tuple seeding falls back to ``hash()``,
    which is randomized per process for strings and would silently break
    cross-run reproducibility.  Distinct part tuples give decorrelated
    streams, which is exactly what per-(node, peer) retry jitter needs:
    every peer backs off on its own schedule, but the same seed always
    reproduces the same storm.
    """
    return random.Random(":".join(repr(part) for part in parts))
