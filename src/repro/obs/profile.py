"""Continuous profiling: a deterministic phase ledger and a stack sampler.

Two complementary profilers, both opt-in and both zero-cost when no
profiler is installed:

* :class:`PhaseProfiler` — a *deterministic* cost ledger keyed by the
  fixed :data:`PHASES` taxonomy.  Instrumented call sites (and every
  span the tracer opens) enter/exit a named phase; the profiler
  attributes **self time** — a phase's wall seconds minus the seconds
  spent in nested phases — so the per-phase totals never double-count
  and sum to at most the profiled wall time.  ``track_alloc=True``
  additionally records net ``tracemalloc`` allocation deltas per phase.
  The ledger snapshot is embedded in benchmark trajectories
  (``benchmarks/runner.py``) so ``compare.py --blame`` can name the
  phases a wall-time regression came from.

* :class:`StackSampler` — a ``sys.setprofile`` call-stack profiler that
  accumulates wall time per call stack and emits collapsed-stack
  ("folded") output: one ``frame;frame;frame value`` line per unique
  stack, the format speedscope, FlameGraph, and ``inferno`` load
  directly.  Heavyweight (it hooks every Python call), so it is meant
  for one-off investigations, never for recorded trajectories.

Recursion within one phase is collapsed: re-entering the phase at the
top of the stack costs two integer operations, not a clock read, so the
recursive typechecker and proof checker can hook their per-node entry
points without distorting the numbers they measure.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from typing import Callable

__all__ = [
    "PHASES",
    "PHASE_NAMES",
    "PROFILE_SCHEMA",
    "PhaseLedger",
    "PhaseProfiler",
    "StackSampler",
    "parse_folded",
    "phase_of",
]

# Bump when the ledger snapshot shape changes.
PROFILE_SCHEMA = "repro.profile/1"

# The fixed phase taxonomy: every profiled second lands in exactly one
# of these.  Order is documentation (pipeline order); snapshots sort by
# name.  See docs/profiling.md for the call-site catalogue.
PHASES: tuple[tuple[str, str], ...] = (
    ("parse", "wire decoding: block and transaction deserialization"),
    ("script", "script interpreter execution"),
    ("sighash", "signature-hash serialization (cache misses)"),
    ("ecmult", "elliptic-curve scalar multiplication"),
    ("sigcache", "signature-cache lookups and inserts"),
    ("utxo_apply", "UTXO set block apply"),
    ("utxo_undo", "UTXO set block undo (reorg rollback)"),
    ("utxo_flush", "UTXO cache write-back flush"),
    ("chain_connect", "block connect orchestration"),
    ("miner_template", "block template assembly"),
    ("store_append", "durable store appends (incl. fsync)"),
    ("store_snapshot", "UTXO snapshot writes (incl. fsync)"),
    ("store_recover", "store recovery replay"),
    ("lf_typecheck", "LF type/kind synthesis (paper's dependent types)"),
    ("logic_check", "affine proof checking"),
    ("core_verify", "claim verification incl. upstream-set walks"),
    ("core_batch", "batch-mode upstream-set checks and composition"),
    ("service", "verification-service orchestration (admission, fan-out)"),
    ("other", "spans outside the taxonomy"),
)

PHASE_NAMES: frozenset[str] = frozenset(name for name, _ in PHASES)

# Exact span-name -> phase attribution for the spans the pipeline emits.
_SPAN_PHASES: dict[str, str] = {
    "chain.connect_block": "chain_connect",
    "utxo.apply_block": "utxo_apply",
    "utxo.undo_block": "utxo_undo",
    "utxocache.flush": "utxo_flush",
    "miner.build_template": "miner_template",
    "store.recover": "store_recover",
    "proof.check": "logic_check",
    "verify.claim": "core_verify",
}

# Fallback: a span's dotted prefix names its subsystem.
_PREFIX_PHASES: dict[str, str] = {
    "batch": "core_batch",
    "verify": "core_verify",
    "proof": "logic_check",
    "lf": "lf_typecheck",
    "service": "service",
}


def phase_of(span_name: str) -> str:
    """The taxonomy phase a span name is attributed to (``other`` if none)."""
    phase = _SPAN_PHASES.get(span_name)
    if phase is not None:
        return phase
    return _PREFIX_PHASES.get(span_name.partition(".")[0], "other")


class PhaseLedger:
    """Accumulated per-phase cost: self seconds, calls, net alloc bytes."""

    __slots__ = ("seconds", "calls", "alloc_bytes")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self.alloc_bytes: dict[str, int] = {}

    def count(self, phase: str, calls: int = 1) -> None:
        self.calls[phase] = self.calls.get(phase, 0) + calls

    def add(self, phase: str, seconds: float, alloc_bytes: int = 0) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        if alloc_bytes:
            self.alloc_bytes[phase] = (
                self.alloc_bytes.get(phase, 0) + alloc_bytes
            )

    def clear(self) -> None:
        self.seconds.clear()
        self.calls.clear()
        self.alloc_bytes.clear()

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def phases(self) -> dict[str, dict]:
        """Deterministic ``{phase: {seconds, calls[, alloc_bytes]}}`` view
        of every touched phase, sorted by phase name."""
        out: dict[str, dict] = {}
        for phase in sorted(set(self.calls) | set(self.seconds)):
            cost: dict = {
                "seconds": self.seconds.get(phase, 0.0),
                "calls": self.calls.get(phase, 0),
            }
            if phase in self.alloc_bytes:
                cost["alloc_bytes"] = self.alloc_bytes[phase]
            out[phase] = cost
        return out


class PhaseProfiler:
    """Deterministic self-time attribution over the :data:`PHASES` taxonomy.

    Install with :func:`repro.obs.set_profiler`; instrumented call sites
    and the span tracer then feed :meth:`enter`/:meth:`exit` pairs.  The
    enter/exit discipline is structural (``with`` blocks and
    ``try/finally``), so the stack never desynchronizes; a stray
    :meth:`exit` on an empty stack is a no-op rather than an error.

    ``track_alloc=True`` starts ``tracemalloc`` (if not already tracing)
    and attributes *net* allocation deltas per phase with the same
    child-subtraction rule as wall time — frees can make a phase's
    bytes negative.
    """

    __slots__ = ("ledger", "track_alloc", "checkpoints", "_clock", "_stack",
                 "_started_tracemalloc")

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        track_alloc: bool = False,
    ) -> None:
        if clock is None:
            from repro import obs

            clock = obs.clock
        self._clock = clock
        self.ledger = PhaseLedger()
        self.track_alloc = track_alloc
        self._started_tracemalloc = False
        if track_alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        # Stack entries: [phase, start, child_seconds, reentries,
        #                 alloc_start, child_alloc].
        self._stack: list[list] = []
        # (timestamp, {phase: self_seconds}) samples for counter tracks.
        self.checkpoints: list[tuple[float, dict[str, float]]] = []

    # -- recording -------------------------------------------------------

    def enter(self, phase: str) -> None:
        """Open a phase region (must be paired with :meth:`exit`).

        Re-entering the phase already at the top of the stack (direct or
        mutual recursion within one phase) only bumps a counter — the
        region stays open until the matching exits unwind.
        """
        stack = self._stack
        self.ledger.count(phase)
        if stack and stack[-1][0] == phase:
            stack[-1][3] += 1
            return
        alloc = (
            tracemalloc.get_traced_memory()[0] if self.track_alloc else 0
        )
        stack.append([phase, self._clock(), 0.0, 1, alloc, 0])

    def exit(self) -> None:
        """Close the innermost phase region, attributing its self time."""
        stack = self._stack
        if not stack:
            return
        top = stack[-1]
        if top[3] > 1:
            top[3] -= 1
            return
        stack.pop()
        elapsed = self._clock() - top[1]
        alloc_delta = 0
        if self.track_alloc:
            alloc_delta = tracemalloc.get_traced_memory()[0] - top[4]
        self.ledger.add(top[0], elapsed - top[2], alloc_delta - top[5])
        if stack:
            parent = stack[-1]
            parent[2] += elapsed
            parent[5] += alloc_delta

    # -- span-tracer hooks (see repro.obs.trace._ActiveSpan) --------------

    def span_enter(self, name: str) -> None:
        self.enter(phase_of(name))

    def span_exit(self) -> None:
        self.exit()

    # -- export ------------------------------------------------------------

    def checkpoint(self) -> None:
        """Record a ``(now, per-phase self seconds)`` sample.

        A sequence of checkpoints renders as a Perfetto counter track via
        :func:`repro.obs.export.phase_counter_events`.  Only *completed*
        regions are visible; time inside still-open phases lands at their
        exit.
        """
        self.checkpoints.append(
            (self._clock(), dict(self.ledger.seconds))
        )

    def snapshot(self) -> dict:
        """Deterministic JSON-able ledger view (the trajectory shape)."""
        return {
            "schema": PROFILE_SCHEMA,
            "track_alloc": self.track_alloc,
            "phases": self.ledger.phases(),
        }

    def reset(self) -> None:
        self.ledger.clear()
        self._stack.clear()
        self.checkpoints.clear()

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False


class StackSampler:
    """A ``sys.setprofile`` wall-time profiler emitting folded stacks.

    Attributes the time between consecutive call/return events to the
    call stack active during that interval, keyed by
    ``module.qualname`` frames.  C calls are not pushed — their time
    accrues to the Python frame that made them.  Per-thread (the hook
    only sees the installing thread) and *expensive*: every Python call
    pays for two dict operations and a clock read, so keep it out of
    recorded benchmark trajectories.

    ``folded()`` renders ``frame;frame;frame microseconds`` lines —
    load them in speedscope (https://www.speedscope.app) or feed them
    to ``flamegraph.pl``.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._stacks: dict[tuple[str, ...], float] = {}
        self._frames: list[str] = []
        self._last = 0.0
        self._previous_hook = None
        self.installed = False

    @staticmethod
    def _label(frame) -> str:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        qualname = getattr(code, "co_qualname", code.co_name)
        return f"{module}.{qualname}"

    def _flush(self, now: float) -> None:
        if self._frames:
            key = tuple(self._frames)
            self._stacks[key] = self._stacks.get(key, 0.0) + (now - self._last)
        self._last = now

    def _hook(self, frame, event: str, arg) -> None:
        if event == "call":
            self._flush(self._clock())
            self._frames.append(self._label(frame))
        elif event == "return":
            self._flush(self._clock())
            if self._frames:
                self._frames.pop()
        # c_call/c_return/c_exception: time stays on the Python frame.

    def install(self) -> None:
        """Start sampling on the current thread."""
        if self.installed:
            return
        self._previous_hook = sys.getprofile()
        self._frames.clear()
        self._last = self._clock()
        self.installed = True
        sys.setprofile(self._hook)

    def uninstall(self) -> None:
        """Stop sampling and restore the previous profile hook."""
        if not self.installed:
            return
        sys.setprofile(self._previous_hook)
        self._flush(self._clock())
        self._frames.clear()
        self.installed = False

    def __enter__(self) -> "StackSampler":
        self.install()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    def folded(self) -> str:
        """Collapsed-stack output: ``frame;frame value`` per unique stack.

        Values are integer microseconds; zero-weight stacks are dropped.
        Lines are sorted for determinism under a fixed clock.
        """
        lines = []
        for stack in sorted(self._stacks):
            micros = round(self._stacks[stack] * 1e6)
            if micros > 0:
                lines.append(f"{';'.join(stack)} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        self._stacks.clear()


def parse_folded(text: str) -> list[tuple[list[str], int]]:
    """Parse collapsed-stack text into ``(frames, value)`` entries.

    Raises :class:`ValueError` on any malformed line — the shape check
    the profiling smoke (and speedscope compatibility) rides on: every
    non-empty line is ``frame(;frame)* <non-negative integer>``.
    """
    entries: list[tuple[list[str], int]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        stack_part, sep, value_part = line.rpartition(" ")
        if not sep or not stack_part:
            raise ValueError(f"folded line {lineno}: missing value: {line!r}")
        try:
            value = int(value_part)
        except ValueError as exc:
            raise ValueError(
                f"folded line {lineno}: non-integer value {value_part!r}"
            ) from exc
        if value < 0:
            raise ValueError(f"folded line {lineno}: negative value {value}")
        frames = stack_part.split(";")
        if any(not frame for frame in frames):
            raise ValueError(f"folded line {lineno}: empty frame: {line!r}")
        entries.append((frames, value))
    return entries
