"""Human-readable per-stage breakdown of an observability snapshot.

The benchmarks call :func:`render_report` after their headline numbers so
every ``bench_*`` run shows where validation, proof-checking, and network
time actually went.  Works from a snapshot dict (so it can render saved
JSON as well as the live registry).
"""

from __future__ import annotations

from repro import obs


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s "
    if value >= 0.001:
        return f"{value * 1000:8.3f}ms"
    return f"{value * 1e6:8.1f}µs"


def render_report(snapshot: dict | None = None, title: str = "observability") -> str:
    """Format counters, gauges, and timing histograms as an aligned table."""
    snap = snapshot if snapshot is not None else obs.snapshot()
    lines = [f"--- {title}: per-stage breakdown ---"]

    histograms = snap.get("histograms", {})
    if histograms:
        lines.append(
            f"{'timing series':<44}{'count':>8}{'total':>11}{'mean':>11}"
            f"{'p50':>11}{'p95':>11}{'p99':>11}"
        )
        for name, hist in histograms.items():
            timing = "seconds" in name
            fmt = _fmt_seconds if timing else lambda v: f"{v:.2f}"
            # Hand-built or truncated snapshots may lack any of these
            # fields; render zeros rather than crashing the report.
            total_value = hist.get("sum", 0.0)
            count = hist.get("count", 0)
            mean = hist.get("mean", 0.0)
            total = _fmt_seconds(total_value) if timing else f"{total_value:g}"
            row = f"{name:<44}{count:>8}{total:>11}{fmt(mean):>11}"
            # Quantiles are interpolated from buckets (see docs); snapshots
            # predating the export layer may lack them.
            for key in ("p50", "p95", "p99"):
                row += f"{fmt(hist[key]):>11}" if key in hist else f"{'-':>11}"
            lines.append(row)

    counters = snap.get("counters", {})
    if counters:
        lines.append(f"{'counter':<44}{'value':>8}")
        for name, value in counters.items():
            lines.append(f"{name:<44}{value:>8}")

    gauges = snap.get("gauges", {})
    if gauges:
        lines.append(f"{'gauge':<44}{'value':>8}")
        for name, value in gauges.items():
            shown = int(value) if float(value).is_integer() else round(value, 3)
            lines.append(f"{name:<44}{shown:>8}")

    span_list = snap.get("spans", [])
    if span_list:
        lines.append(f"spans recorded: {len(span_list)}"
                     + (f" (dropped {snap['spans_dropped']})"
                        if snap.get("spans_dropped") else ""))
    event_list = snap.get("events", [])
    if event_list:
        lines.append(f"events recorded: {len(event_list)}"
                     + (f" (dropped {snap['events_dropped']})"
                        if snap.get("events_dropped") else ""))
    return "\n".join(lines)


def render_phases(profile: dict | None = None, title: str = "phases") -> str:
    """Format a profiler snapshot's phase ledger as an aligned table.

    ``profile`` is a :meth:`repro.obs.PhaseProfiler.snapshot` dict (live
    or loaded from a ``BENCH_*.json`` experiment record); ``None`` reads
    the installed profiler.  Rows are sorted by self-time, descending, so
    the top line answers "where did this run spend its time?".
    """
    if profile is None:
        prof = obs.profiler()
        if prof is None:
            return f"--- {title}: no profiler installed ---"
        profile = prof.snapshot()
    phases = profile.get("phases") or {}
    lines = [f"--- {title}: per-phase self time ---"]
    if not phases:
        lines.append("(no phase activity recorded)")
        return "\n".join(lines)
    track_alloc = any("alloc_bytes" in entry for entry in phases.values())
    header = f"{'phase':<18}{'self':>11}{'calls':>10}{'share':>8}"
    if track_alloc:
        header += f"{'alloc':>12}"
    lines.append(header)
    total = sum(entry.get("seconds", 0.0) for entry in phases.values())
    ordered = sorted(
        phases.items(),
        key=lambda item: (-item[1].get("seconds", 0.0), item[0]),
    )
    for phase, entry in ordered:
        seconds = entry.get("seconds", 0.0)
        share = seconds / total if total else 0.0
        row = (
            f"{phase:<18}{_fmt_seconds(seconds):>11}"
            f"{entry.get('calls', 0):>10}{share:>8.1%}"
        )
        if track_alloc:
            row += f"{entry.get('alloc_bytes', 0):>11}B"
        lines.append(row)
    return "\n".join(lines)


def render_trace(snapshot: dict | None = None, limit: int = 40) -> str:
    """An indented listing of the ``limit`` most recent spans."""
    snap = snapshot if snapshot is not None else obs.snapshot()
    recorded = snap.get("spans", [])
    lines = ["--- trace ---"]
    if len(recorded) > limit:
        lines.append(f"... {len(recorded) - limit} earlier spans elided ...")
    for span in recorded[-limit:]:
        attrs = "".join(
            f" {key}={value}" for key, value in sorted(span["attrs"].items())
        )
        indent = "  " * span["depth"]
        lines.append(
            f"{indent}{span['name']} {_fmt_seconds(span['duration']).strip()}{attrs}"
        )
    return "\n".join(lines)
