"""``repro.obs`` — metrics, structured tracing, and profiling hooks.

The observability substrate for the whole validation pipeline: a
dependency-free metrics registry (:mod:`repro.obs.metrics`), a span tracer
(:mod:`repro.obs.trace`), and a pretty-printed report
(:mod:`repro.obs.report`).  Instrumented call sites across
``repro.bitcoin``, ``repro.lf``, ``repro.logic``, and ``repro.core``
record into a process-wide default registry/tracer through the helpers
here.

Zero cost when disabled
-----------------------

Observability is **off by default**.  Every instrumented call site guards
on the module-level :data:`ENABLED` flag::

    if obs.ENABLED:
        obs.inc("mempool.accepted_total")

so a disabled run performs one attribute load and a falsy branch — no dict
or list allocation, no registry traffic (tests enforce this with a
poisoned registry stub).  Turn it on with :func:`enable`, with
``RegtestNetwork(observe=True)``, or by setting ``REPRO_OBS=1`` in the
environment before the first import.

Exports
-------

Three views of the collected data:

* :func:`snapshot` — JSON-able dict of every series (plus spans);
* :func:`render_text` — Prometheus-style text exposition;
* :func:`repro.obs.report.render_report` — human-readable per-stage
  breakdown the benchmarks print next to their headline numbers.

See ``docs/observability.md`` for the metric and span name catalogue.
"""

from __future__ import annotations

import os
import time
from typing import Callable

from repro.obs.events import EVENT_KINDS, EVENT_SCHEMA_VERSION, Event, EventLog
from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    series_name,
)
from repro.obs.profile import (
    PHASES,
    PhaseLedger,
    PhaseProfiler,
    StackSampler,
    phase_of,
)
from repro.obs.trace import Span, Tracer, _ActiveSpan

__all__ = [
    "ENABLED", "enable", "disable", "reset",
    "registry", "set_registry", "tracer", "set_tracer",
    "events", "set_event_log", "emit",
    "clock", "set_clock", "reset_clock",
    "inc", "observe", "gauge_set", "gauge_max", "trace_span",
    "snapshot", "render_text", "spans",
    "NodeTelemetry", "node_scope", "current_node",
    "PROFILER", "set_profiler", "profiler",
    "SAMPLER", "set_sampler", "sampler",
    "PHASES", "PhaseLedger", "PhaseProfiler", "StackSampler", "phase_of",
    "Registry", "Tracer", "Span", "Counter", "Gauge", "Histogram",
    "Event", "EventLog", "EVENT_KINDS", "EVENT_SCHEMA_VERSION",
    "COUNT_BUCKETS", "DEFAULT_BUCKETS", "CATALOGUE", "series_name",
]

# The metric catalogue: every series the instrumented pipeline can emit,
# pre-registered on enable() so reports and dashboards always see the full
# schema (a counter that never fired reads 0, not "missing").  Kinds:
# "c" counter, "g" gauge, "h" timing histogram, "hc" count histogram.
CATALOGUE: tuple[tuple[str, str], ...] = (
    ("script.executions_total", "c"),
    ("script.failures_total", "c"),
    ("script.ops_total", "c"),
    ("script.pushes_total", "c"),
    ("script.stack_depth_hwm", "g"),
    ("validation.tx_total", "c"),
    ("validation.rule_seconds", "h"),
    ("chain.blocks_connected_total", "c"),
    ("chain.blocks_disconnected_total", "c"),
    ("chain.connect_seconds", "h"),
    ("chain.reorg_total", "c"),
    ("chain.reorg_depth", "hc"),
    ("utxo.set_size", "g"),
    ("mempool.accepted_total", "c"),
    ("mempool.rejected_total", "c"),
    ("mempool.evicted_total", "c"),
    ("mempool.orphans_total", "c"),
    ("mempool.size", "g"),
    ("net.events_total", "c"),
    ("net.queue_size", "g"),
    ("net.blocks_relayed_total", "c"),
    ("net.txs_relayed_total", "c"),
    ("net.block_propagation_seconds", "h"),
    ("lf.typecheck_total", "c"),
    ("lf.basis_lookups_total", "c"),
    ("proof.nodes_total", "c"),
    ("proof.check_seconds", "h"),
    ("ledger.apply_seconds", "h"),
    ("ledger.check_seconds", "h"),
    ("verify.claims_total", "c"),
    ("verify.carriers_total", "c"),
    ("verify.claim_seconds", "h"),
    ("script.budget_exhausted_total", "c"),
    ("miner.hash_attempts_total", "c"),
    ("miner.template_txs_total", "c"),
    ("miner.template_seconds", "h"),
    ("pow.retargets_total", "c"),
    ("utxo.apply_seconds", "h"),
    ("utxo.undo_seconds", "h"),
    ("utxo.gc_swept_total", "c"),
    # Chaos layer: fault injection, partitions, crash/restart.
    ("fault.msgs_dropped_total", "c"),
    ("fault.msgs_duplicated_total", "c"),
    ("fault.latency_spikes_total", "c"),
    ("fault.partitions_total", "c"),
    ("fault.heals_total", "c"),
    ("fault.crashes_total", "c"),
    ("fault.restarts_total", "c"),
    # Catch-up sync sessions (headers-first re-request on reconnect).
    ("sync.sessions_total", "c"),
    ("sync.blocks_fetched_total", "c"),
    ("sync.compact_hits_total", "c"),
    ("sync.compact_fallback_total", "c"),
    ("sync.timeouts_total", "c"),
    ("sync.retries_total", "c"),
    ("sync.failures_total", "c"),
    # Peer misbehavior scoring and bounded-pool evictions.
    ("chain.blocks_rejected_total", "c"),
    ("peer.misbehavior_points_total", "c"),
    ("peer.bans_total", "c"),
    ("net.seen_evicted_total", "c"),
    ("mempool.orphans_evicted_total", "c"),
    # Verification fast path: EC multiplication, sighash midstates, sigcache.
    ("ecmult.mults_total", "c"),
    ("ecmult.dual_total", "c"),
    ("ecmult.table_builds_total", "c"),
    ("ecmult.point_table_builds_total", "c"),
    ("sighash.cache_hits_total", "c"),
    ("sighash.cache_misses_total", "c"),
    ("sigcache.hits_total", "c"),
    ("sigcache.misses_total", "c"),
    ("sigcache.evictions_total", "c"),
    ("sigcache.size", "g"),
    # Durable block store: append path, snapshots, crash recovery.
    ("store.blocks_appended_total", "c"),
    ("store.disconnects_appended_total", "c"),
    ("store.bytes_written_total", "c"),
    ("store.snapshots_total", "c"),
    ("store.snapshot_fallbacks_total", "c"),
    ("store.recoveries_total", "c"),
    ("store.recovered_blocks_total", "c"),
    ("store.truncated_records_total", "c"),
    ("store.truncated_bytes_total", "c"),
    ("store.crc_failures_total", "c"),
    ("store.recover_seconds", "h"),
    # Consensus/wallet boundary fixes riding with the store.
    ("utxo.undo_missing_total", "c"),
    ("mempool.reinjected_total", "c"),
    ("fault.torn_writes_total", "c"),
    # Swarm telemetry: causal relay hops, invariant monitors, flight
    # recorder dumps, supply-inflation fault injection.
    ("relay.hops_total", "c"),
    ("relay.redundant_total", "c"),
    ("monitor.checks_total", "c"),
    ("monitor.violations_total", "c"),
    ("flight.dumps_total", "c"),
    ("fault.inflations_total", "c"),
    # Fault-tolerant verification service: admission, memo/cache, pool,
    # circuit breaker, degraded path, client retries.
    ("service.requests_total", "c"),
    ("service.verdicts_total", "c"),
    ("service.verify_seconds", "h"),
    ("service.memo_hits_total", "c"),
    ("service.memo_misses_total", "c"),
    ("service.memo_poison_rejected_total", "c"),
    ("service.breaker_trips_total", "c"),
    ("service.pool_respawns_total", "c"),
    ("service.worker_jobs_total", "c"),
    ("service.shed_total", "c"),
    ("service.degraded_total", "c"),
    ("service.retries_total", "c"),
    ("service.inflight", "g"),
    # Block-connect script pool crash fallback (serial re-verification).
    ("script.pool_broken_total", "c"),
    # High-throughput block pipeline: batched ECDSA (multi-scalar
    # multiplication + optimistic collection) and the write-back UTXO
    # cache hierarchy.
    ("ecmult.batch_total", "c"),
    ("ecmult.batch_terms_total", "c"),
    ("ecmult.batch_verify_total", "c"),
    ("ecmult.batch_verify_sigs_total", "c"),
    ("ecmult.batch_unhinted_total", "c"),
    ("ecmult.batch_bisect_total", "c"),
    ("script.batch_collected_total", "c"),
    ("script.batch_fallback_total", "c"),
    ("utxocache.hits_total", "c"),
    ("utxocache.misses_total", "c"),
    ("utxocache.annihilated_total", "c"),
    ("utxocache.flushes_total", "c"),
    ("utxocache.flushed_entries_total", "c"),
    ("utxocache.overlay_size", "g"),
    # Compact block relay (BIP 152-style): announcements received,
    # reconstruction outcomes, and round-trip recovery traffic.
    ("compact.blocks_total", "c"),
    ("compact.reconstructed_total", "c"),
    ("compact.misses_total", "c"),
    ("compact.collisions_total", "c"),
    ("compact.roundtrips_total", "c"),
    ("compact.fallback_total", "c"),
    ("compact.withheld_total", "c"),
    # Relay wire bytes, total and by message kind (charged at send time).
    ("relay.bytes_total", "c"),
    ("relay.block_bytes_total", "c"),
    ("relay.tx_bytes_total", "c"),
    ("relay.compact_bytes_total", "c"),
    ("relay.getblocktxn_bytes_total", "c"),
    ("relay.blocktxn_bytes_total", "c"),
    ("relay.getblock_bytes_total", "c"),
    ("relay.sync_bytes_total", "c"),
    # Duplicates of already-held transactions suppressed after seen-set
    # eviction (the relay-storm guard in Node._submit_transaction).
    ("net.duplicates_suppressed_total", "c"),
)


def _declare_catalogue(reg: Registry) -> None:
    for name, kind in CATALOGUE:
        if kind == "c":
            reg.counter(name)
        elif kind == "g":
            reg.gauge(name)
        elif kind == "hc":
            reg.histogram(name, COUNT_BUCKETS)
        else:
            reg.histogram(name)


def _event_clock() -> float:
    return _clock()


_registry = Registry()
_tracer = Tracer()
_events = EventLog(clock=_event_clock)
_clock: Callable[[], float] = time.perf_counter

# The installed phase profiler, or None.  Call sites read this module
# attribute directly (``obs.PROFILER``) behind their ``obs.ENABLED``
# guard, so the disabled path performs no profile traffic at all and
# the enabled-but-unprofiled path pays one attribute load and a None
# check.  Install with :func:`set_profiler`.
PROFILER: PhaseProfiler | None = None

# The installed call-stack sampler (``repro.obs.serve`` exposes its folded
# output on ``/profile.folded``), or None.  Install with
# :func:`set_sampler`.
SAMPLER: StackSampler | None = None

ENABLED: bool = os.environ.get("REPRO_OBS", "") not in ("", "0")
if ENABLED:
    _declare_catalogue(_registry)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def enable() -> None:
    """Turn observability on and pre-register the metric catalogue."""
    global ENABLED
    ENABLED = True
    _declare_catalogue(_registry)


def disable() -> None:
    global ENABLED
    ENABLED = False


def reset() -> None:
    """Clear every series, span, and event (catalogue re-registered if
    enabled)."""
    _registry.clear()
    _tracer.clear()
    _events.clear()
    if ENABLED:
        _declare_catalogue(_registry)


def registry() -> Registry:
    return _registry


def set_registry(reg: Registry) -> Registry:
    """Swap the default registry (tests install poisoned stubs); returns
    the previous one."""
    global _registry
    previous, _registry = _registry, reg
    return previous


def tracer() -> Tracer:
    return _tracer


def set_tracer(trc: Tracer) -> Tracer:
    global _tracer
    previous, _tracer = _tracer, trc
    return previous


def profiler() -> PhaseProfiler | None:
    """The installed phase profiler, if any."""
    return PROFILER


def set_profiler(prof: PhaseProfiler | None) -> PhaseProfiler | None:
    """Install (or remove, with ``None``) the phase profiler; returns the
    previous one.  Profiling hooks only fire while observability is
    enabled — the profiler reuses the same ``obs.ENABLED`` guards as the
    metric call sites."""
    global PROFILER
    previous, PROFILER = PROFILER, prof
    return previous


def sampler() -> StackSampler | None:
    """The installed call-stack sampler, if any."""
    return SAMPLER


def set_sampler(smp: StackSampler | None) -> StackSampler | None:
    """Install (or remove, with ``None``) the call-stack sampler; returns
    the previous one.  Installing only publishes the sampler for exporters
    — call :meth:`StackSampler.install` (or use it as a context manager)
    to actually start sampling."""
    global SAMPLER
    previous, SAMPLER = SAMPLER, smp
    return previous


def events() -> EventLog:
    return _events


def set_event_log(log: EventLog) -> EventLog:
    """Swap the default event log (tests install poisoned stubs); returns
    the previous one."""
    global _events
    previous, _events = _events, log
    return previous


# ----------------------------------------------------------------------
# Clock (swappable so tests get deterministic timings)
# ----------------------------------------------------------------------


def clock() -> float:
    return _clock()


def set_clock(fn: Callable[[], float]) -> Callable[[], float]:
    global _clock
    previous, _clock = _clock, fn
    return previous


def reset_clock() -> None:
    global _clock
    _clock = time.perf_counter


# ----------------------------------------------------------------------
# Per-node telemetry scopes (swarm attribution)
# ----------------------------------------------------------------------


class NodeTelemetry:
    """One simulated node's private registry, tracer, and event ring.

    While a :func:`node_scope` for this telemetry is active, every
    recording helper dual-writes: the process-wide aggregate still sees
    everything (existing dashboards and gates keep working), and the
    node's own series accumulate the per-node view that
    :func:`repro.obs.swarm.swarm_snapshot` merges with a ``node`` label.
    """

    __slots__ = ("name", "registry", "tracer", "events")

    def __init__(
        self, name: str, event_capacity: int = 4096, max_spans: int = 4096
    ):
        self.name = name
        self.registry = Registry()
        self.tracer = Tracer(max_spans=max_spans)
        self.events = EventLog(capacity=event_capacity, clock=_event_clock)

    def snapshot(self) -> dict:
        """The node's deterministic JSON-able view (same shape as
        :func:`snapshot`)."""
        snap = self.registry.snapshot()
        snap["spans"] = self.tracer.snapshot()
        snap["spans_dropped"] = self.tracer.dropped
        snap["events"] = self.events.snapshot()
        snap["events_dropped"] = self.events.dropped
        return snap

    def reset(self) -> None:
        self.registry.clear()
        self.tracer.clear()
        self.events.clear()


# Innermost-first stack of active NodeTelemetry scopes.  The simulator is
# single-threaded, so a plain module-level list is race-free.
_node_stack: list[NodeTelemetry] = []


class _NodeScope:
    """Context manager routing recordings to one node's telemetry."""

    __slots__ = ("telemetry",)

    def __init__(self, telemetry: NodeTelemetry | None):
        self.telemetry = telemetry

    def __enter__(self) -> NodeTelemetry | None:
        if self.telemetry is not None:
            _node_stack.append(self.telemetry)
        return self.telemetry

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.telemetry is not None:
            _node_stack.pop()


def node_scope(telemetry: NodeTelemetry | None) -> _NodeScope:
    """Attribute recordings inside the ``with`` to ``telemetry`` (a None
    telemetry scope is a no-op, so standalone components fall back to the
    global registry unconditionally)."""
    return _NodeScope(telemetry)


def current_node() -> NodeTelemetry | None:
    """The innermost active node scope, if any."""
    return _node_stack[-1] if _node_stack else None


# ----------------------------------------------------------------------
# Recording helpers — call only behind an ``if obs.ENABLED:`` guard.
# ----------------------------------------------------------------------


def inc(name: str, amount: int = 1, **labels: object) -> None:
    _registry.inc(name, amount, **labels)
    if _node_stack:
        _node_stack[-1].registry.inc(name, amount, **labels)


def observe(
    name: str,
    value: float,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    **labels: object,
) -> None:
    _registry.observe(name, value, buckets, **labels)
    if _node_stack:
        _node_stack[-1].registry.observe(name, value, buckets, **labels)


def gauge_set(name: str, value: float) -> None:
    _registry.gauge_set(name, value)
    if _node_stack:
        _node_stack[-1].registry.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    _registry.gauge_max(name, value)
    if _node_stack:
        _node_stack[-1].registry.gauge_max(name, value)


def emit(kind: str, **fields: object) -> None:
    """Record a structured event (see :mod:`repro.obs.events`)::

        if obs.ENABLED:
            obs.emit("tx.accepted", txid=tx.txid, fee=fee, size=size)

    Call only behind an ``if obs.ENABLED:`` guard — the kwargs dict alone
    would be an allocation on the disabled path.  Under a node scope the
    event is stamped with the node's name (unless the caller already set
    one) and mirrored into the node's private ring.
    """
    if _node_stack:
        telemetry = _node_stack[-1]
        if "node" not in fields:
            fields["node"] = telemetry.name
        # Build/validate once; the node ring mirrors the same object.
        telemetry.events.append(_events.emit(kind, **fields))
    else:
        _events.emit(kind, **fields)


def trace_span(name: str, metric: str | None = None, **attrs: object):
    """Open a traced region::

        if obs.ENABLED:
            with obs.trace_span("chain.connect_block", height=h):
                ...

    ``metric=`` additionally feeds the duration into that histogram.
    Callers keep the ``ENABLED`` guard at the call site (the kwargs dict
    alone would be an allocation on the disabled path).  Under a node
    scope the span lands on the node's own tracer (its ``pid`` track in
    the swarm Chrome trace); the metric histogram feeds both registries.
    """
    if _node_stack:
        telemetry = _node_stack[-1]
        return _ActiveSpan(
            telemetry.tracer, _registry, _clock, name, metric, attrs,
            extra_registry=telemetry.registry, profiler=PROFILER,
        )
    return _ActiveSpan(
        _tracer, _registry, _clock, name, metric, attrs, profiler=PROFILER
    )


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


def snapshot() -> dict:
    """A deterministic JSON-able view: all series, spans, and events."""
    snap = _registry.snapshot()
    snap["spans"] = _tracer.snapshot()
    snap["spans_dropped"] = _tracer.dropped
    snap["events"] = _events.snapshot()
    snap["events_dropped"] = _events.dropped
    return snap


def render_text() -> str:
    """Prometheus-style text exposition of the default registry."""
    return _registry.render_text()


def spans() -> list[Span]:
    return list(_tracer.spans)
