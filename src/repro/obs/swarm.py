"""Swarm telemetry aggregation: merge per-node snapshots into one view.

Each simulated :class:`~repro.bitcoin.network.Node` records into its own
:class:`~repro.obs.NodeTelemetry` (while the process-wide registry keeps
the aggregate).  :func:`swarm_snapshot` merges those per-node snapshots
into one sorted, deterministic dict: every counter/gauge/histogram gains
a ``node`` label dimension (``chain.blocks_connected_total{node="node3"}``),
counters and histograms additionally sum into an unlabeled swarm-wide
series, and the per-node event rings interleave into one stream ordered
by ``(ts, node, seq)``.  Two identical seeded runs under a fake clock
produce byte-identical JSON of this snapshot.
"""

from __future__ import annotations

from repro.obs.metrics import series_name

__all__ = ["SWARM_SCHEMA", "swarm_snapshot", "telemetry_of"]

# Bump when the merged-snapshot shape changes.
SWARM_SCHEMA = "repro.obs.swarm/1"


def telemetry_of(node: object):
    """The :class:`~repro.obs.NodeTelemetry` of a node-like object.

    Accepts a ``network.Node`` (``.telemetry`` attribute) or a bare
    ``NodeTelemetry``; returns None for nodes running without one
    (standalone / created while observability was disabled).
    """
    telemetry = getattr(node, "telemetry", node)
    return telemetry if hasattr(telemetry, "registry") else None


def _merge_histograms(base: dict | None, extra: dict) -> dict:
    """Sum two snapshot-shaped histograms (requires identical edges)."""
    if base is None:
        return {
            "count": extra["count"],
            "sum": extra["sum"],
            "buckets": [list(pair) for pair in extra["buckets"]],
        }
    edges = [pair[0] for pair in base["buckets"]]
    if edges != [pair[0] for pair in extra["buckets"]]:
        # Mismatched bucket layouts cannot be summed; keep the first.
        return base
    return {
        "count": base["count"] + extra["count"],
        "sum": base["sum"] + extra["sum"],
        "buckets": [
            [edge, cum_a + cum_b]
            for (edge, cum_a), (_, cum_b) in zip(
                base["buckets"], extra["buckets"]
            )
        ],
    }


def swarm_snapshot(nodes: list) -> dict:
    """Merge every node's telemetry into one sorted, deterministic dict.

    ``nodes`` is a list of ``network.Node`` objects (or bare
    ``NodeTelemetry``); nodes without telemetry are skipped.  The result::

        {
          "schema": "repro.obs.swarm/1",
          "nodes":  {name: per-node snapshot (metrics + spans + events)},
          "merged": {
            "counters":   {name and name{node="..."}: value},
            "gauges":     {name{node="..."}: value},
            "histograms": {name and name{node="..."}: snapshot dict},
          },
          "events": [event dicts sorted by (ts, node, seq)],
        }

    Counters and histograms sum across nodes into the unlabeled series;
    gauges are per-node only (summing a high-water mark across nodes is
    meaningless).  All keys are sorted, so ``json.dumps(..., sort_keys=
    True)`` of two identical seeded runs is byte-identical.
    """
    per_node: dict[str, dict] = {}
    for node in nodes:
        telemetry = telemetry_of(node)
        if telemetry is None:
            continue
        per_node[telemetry.name] = telemetry.snapshot()

    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    events: list[tuple] = []
    for name in sorted(per_node):
        snap = per_node[name]
        label = {"node": name}
        for series, value in snap["counters"].items():
            if "{" in series:
                continue  # per-node labeled series would double-label
            counters[series] = counters.get(series, 0) + value
            counters[series_name(series, label)] = value
        for series, value in snap["gauges"].items():
            if "{" in series:
                continue
            gauges[series_name(series, label)] = value
        for series, hist in snap["histograms"].items():
            if "{" in series:
                continue
            histograms[series] = _merge_histograms(
                histograms.get(series), hist
            )
            histograms[series_name(series, label)] = hist
        for event in snap["events"]:
            events.append((event["ts"], name, event["seq"], event))

    events.sort(key=lambda item: (item[0], item[1], item[2]))
    return {
        "schema": SWARM_SCHEMA,
        "nodes": {name: per_node[name] for name in sorted(per_node)},
        "merged": {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        },
        "events": [item[3] for item in events],
    }
