"""Machine-readable exports: Chrome trace-event JSON and histogram quantiles.

Two consumers drove this module.  First, span dumps should load in real
trace viewers — :func:`to_chrome_trace` serializes the tracer's spans to
the Chrome trace-event format that ``chrome://tracing`` and Perfetto
accept (complete ``"X"`` events, microsecond timestamps, span attributes
as ``args``).  Second, benchmark trajectories need comparable latency
figures — :func:`quantile_from_cumulative` estimates p50/p95/p99 from a
histogram's cumulative bucket counts, the same linear-interpolation rule
Prometheus's ``histogram_quantile`` uses, so a saved snapshot and a live
registry yield identical numbers.

Quantile semantics (and caveats)
--------------------------------

A fixed-bucket histogram only knows how many observations fell in each
bucket, so a quantile is *interpolated*: observations are assumed
uniformly spread within their bucket.  The estimate is therefore exact
at bucket edges and approximate inside them — never off by more than
one bucket width.  Two edge cases:

* an **empty histogram** has no quantiles; we return ``0.0``;
* a quantile landing in the **overflow bucket** (beyond the last finite
  edge) is clamped to the highest finite edge, as Prometheus does —
  widen the buckets if you see p99 pinned there.
"""

from __future__ import annotations

import json

from repro.obs.metrics import quantile_from_cumulative

__all__ = [
    "QUANTILES",
    "phase_counter_events",
    "quantile_from_cumulative",
    "snapshot_quantiles",
    "to_chrome_trace",
    "swarm_chrome_trace",
    "write_chrome_trace",
    "write_folded",
    "write_swarm_chrome_trace",
]

# The quantiles attached to snapshots, reports, and expositions.
QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def snapshot_quantiles(
    hist: dict, quantiles: tuple[float, ...] = QUANTILES
) -> dict[str, float]:
    """p50/p95/p99 (by default) from a snapshot histogram dict.

    Works on the ``{"count": ..., "buckets": [[edge, cum], ...]}`` shape
    that :meth:`repro.obs.metrics.Registry.snapshot` produces — including
    one loaded back from saved JSON.  A histogram with no bucket list
    (hand-built or truncated snapshots) yields all-zero quantiles rather
    than raising.
    """
    pairs = hist.get("buckets") or []
    return {
        f"p{round(q * 100)}": quantile_from_cumulative(q, pairs)
        for q in quantiles
    }


def to_chrome_trace(
    spans: list[dict],
    events: list[dict] | None = None,
    process_name: str = "repro",
) -> dict:
    """Serialize span dicts to a Chrome trace-event JSON object.

    ``spans`` is the ``obs.snapshot()["spans"]`` list.  Each span becomes
    a complete (``"ph": "X"``) event with microsecond ``ts``/``dur``; span
    attributes ride in ``args``.  Structured events, when given, become
    instant (``"ph": "i"``) events so rejections and reorgs show up as
    markers between the spans.  Load the result in Perfetto
    (https://ui.perfetto.dev — "Open trace file") or ``chrome://tracing``.
    """
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 1,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        args = {key: _arg(value) for key, value in span["attrs"].items()}
        args["span_id"] = span["span_id"]
        if span["parent"] is not None:
            args["parent"] = span["parent"]
        trace_events.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span["name"].partition(".")[0],
                "pid": 1,
                "tid": 1,
                "ts": span["start"] * 1e6,
                "dur": span["duration"] * 1e6,
                "args": args,
            }
        )
    for event in events or []:
        trace_events.append(
            {
                "ph": "i",
                "s": "g",  # global-scope instant: draws a full-height line
                "name": event["kind"],
                "cat": "event",
                "pid": 1,
                "tid": 1,
                "ts": event["ts"] * 1e6,
                "args": dict(event["data"]),
            }
        )
    # Viewers require non-decreasing timestamps within a (pid, tid).
    trace_events.sort(key=lambda e: e["ts"])
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def _arg(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _node_track_events(
    pid: int, name: str, spans: list[dict], events: list[dict]
) -> list[dict]:
    """One node's trace events: subsystem ``tid`` tracks under one pid.

    Span names are dotted (``chain.connect_block``); the prefix is the
    subsystem, and each subsystem gets its own thread track so a node's
    chain/utxo/miner activity renders as parallel lanes.  Structured
    events land on a dedicated ``events`` track.
    """
    categories = sorted({span["name"].partition(".")[0] for span in spans})
    tids = {category: index + 1 for index, category in enumerate(categories)}
    events_tid = len(categories) + 1
    out: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": name},
        }
    ]
    for category in categories:
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tids[category],
                "ts": 0,
                "args": {"name": category},
            }
        )
    if events:
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": events_tid,
                "ts": 0,
                "args": {"name": "events"},
            }
        )
    for span in spans:
        args = {key: _arg(value) for key, value in span["attrs"].items()}
        args["span_id"] = span["span_id"]
        if span["parent"] is not None:
            args["parent"] = span["parent"]
        out.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span["name"].partition(".")[0],
                "pid": pid,
                "tid": tids[span["name"].partition(".")[0]],
                "ts": span["start"] * 1e6,
                "dur": span["duration"] * 1e6,
                "args": args,
            }
        )
    for event in events:
        out.append(
            {
                "ph": "i",
                "s": "t",  # thread-scope instant: stays on the node's track
                "name": event["kind"],
                "cat": "event",
                "pid": pid,
                "tid": events_tid,
                "ts": event["ts"] * 1e6,
                "args": dict(event["data"]),
            }
        )
    return out


def swarm_chrome_trace(
    swarm_snap: dict,
    global_snapshot: dict | None = None,
    exported_unix: float | None = None,
) -> dict:
    """Serialize a :func:`repro.obs.swarm.swarm_snapshot` to Chrome trace
    JSON with one ``pid`` per node and one ``tid`` per subsystem.

    ``global_snapshot`` (an :func:`repro.obs.snapshot` dict), when given,
    renders as an extra ``pid`` named ``repro`` carrying the process-wide
    spans and events.  ``exported_unix`` lands in ``metadata`` — it is
    the only non-deterministic field, so comparisons should drop it.
    """
    trace_events: list[dict] = []
    pid = 1
    if global_snapshot is not None:
        trace_events.extend(
            _node_track_events(
                pid,
                "repro",
                global_snapshot.get("spans", []),
                global_snapshot.get("events", []),
            )
        )
        pid += 1
    for name in sorted(swarm_snap.get("nodes", {})):
        node_snap = swarm_snap["nodes"][name]
        trace_events.extend(
            _node_track_events(
                pid,
                name,
                node_snap.get("spans", []),
                node_snap.get("events", []),
            )
        )
        pid += 1
    trace_events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    if exported_unix is None:
        import time

        exported_unix = time.time()
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"exported_unix": exported_unix},
    }


def write_chrome_trace(path: str, snapshot: dict | None = None) -> int:
    """Dump the (given or live) snapshot's spans as a Chrome trace file.

    Returns the number of trace events written.
    """
    if snapshot is None:
        from repro import obs

        snapshot = obs.snapshot()
    trace = to_chrome_trace(
        snapshot.get("spans", []), snapshot.get("events", [])
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return len(trace["traceEvents"])


def phase_counter_events(
    checkpoints: list[tuple[float, dict[str, float]]],
    pid: int = 1,
    name: str = "phase_seconds",
) -> list[dict]:
    """Render profiler checkpoints as a Perfetto counter track.

    ``checkpoints`` is :attr:`repro.obs.profile.PhaseProfiler.checkpoints`
    — ``(clock_ts, {phase: cumulative_self_seconds})`` samples.  Each
    becomes a ``"ph": "C"`` counter event whose ``args`` carry one series
    per phase, so Perfetto draws stacked per-phase cost over time next to
    the span tracks from :func:`to_chrome_trace`.
    """
    events: list[dict] = [
        {
            "ph": "C",
            "name": name,
            "pid": pid,
            "tid": 0,
            "ts": ts * 1e6,
            "args": {
                phase: round(seconds, 9)
                for phase, seconds in sorted(cumulative.items())
            },
        }
        for ts, cumulative in checkpoints
    ]
    events.sort(key=lambda e: e["ts"])
    return events


def write_folded(path: str, folded: str) -> int:
    """Write collapsed-stack (folded) sampler output to ``path``.

    The text is :meth:`repro.obs.profile.StackSampler.folded` output —
    one ``frame;frame;frame weight`` line per unique stack — which
    speedscope and ``flamegraph.pl`` load directly.  Returns the number
    of stack lines written.
    """
    if folded and not folded.endswith("\n"):
        folded += "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(folded)
    return sum(1 for line in folded.splitlines() if line.strip())


def write_swarm_chrome_trace(
    path: str,
    swarm_snap: dict,
    global_snapshot: dict | None = None,
    exported_unix: float | None = None,
) -> int:
    """Dump a swarm snapshot as a per-node-pid Chrome trace file."""
    trace = swarm_chrome_trace(swarm_snap, global_snapshot, exported_unix)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return len(trace["traceEvents"])
