"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the storage half of :mod:`repro.obs`.  It knows nothing
about being enabled or disabled — call sites guard on ``obs.ENABLED`` and
only reach the registry when observability is on, so a disabled run never
allocates a series.  Snapshots are plain JSON-able dicts with sorted keys,
so two identical runs (under a fake clock) produce identical snapshots.

Series names are dotted (``script.ops_total``); an optional label set
produces an additional ``name{key="value"}`` series next to the unlabeled
aggregate, mirroring how Prometheus clients model label dimensions.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

# Default buckets suit sub-millisecond-to-seconds timings, the range the
# validation pipeline actually spans on regtest workloads.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Buckets for small-integer distributions (reorg depth, bundle size).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89)

# Quantiles attached to histogram snapshots and expositions.
SNAPSHOT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def quantile_from_cumulative(
    q: float, pairs: list[tuple[float | str, int]] | list[list]
) -> float:
    """Estimate the ``q``-quantile from cumulative ``(edge, count)`` pairs.

    ``pairs`` is the :meth:`Histogram.cumulative` shape — ascending finite
    edges followed by a final ``("+Inf", total)`` overflow entry — either
    live or round-tripped through JSON.  Linear interpolation within the
    bucket, Prometheus ``histogram_quantile`` style: an empty histogram
    yields 0.0, and a quantile landing in the overflow bucket is clamped
    to the highest finite edge (see ``repro.obs.export`` for caveats).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not pairs:
        # A bucketless histogram (hand-built snapshot, truncated JSON) has
        # no quantiles; treat it like an empty one.
        return 0.0
    total = pairs[-1][1]
    if total == 0:
        return 0.0
    rank = q * total
    prev_edge = 0.0
    prev_cum = 0
    for edge, cum in pairs:
        if isinstance(edge, str):  # the "+Inf" overflow bucket
            return float(prev_edge)
        if cum >= rank:
            in_bucket = cum - prev_cum
            if in_bucket == 0:
                return float(edge)
            fraction = (rank - prev_cum) / in_bucket
            return prev_edge + (float(edge) - prev_edge) * fraction
        prev_edge, prev_cum = float(edge), cum
    return float(prev_edge)


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move in either direction (set or high-water max)."""

    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


@dataclass
class Histogram:
    """A fixed-bucket histogram with sum and count.

    ``counts[i]`` holds observations with ``value <= buckets[i]`` (and
    greater than the previous edge); ``counts[-1]`` is the overflow bucket.
    Cumulative ``le`` counts are produced at render time.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float | str, int]]:
        """(upper-edge, cumulative-count) pairs, ending with ``+Inf``."""
        out: list[tuple[float | str, int]] = []
        running = 0
        for edge, bucket_count in zip(self.buckets, self.counts):
            running += bucket_count
            out.append((edge, running))
        out.append(("+Inf", running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Interpolated ``q``-quantile estimate from the bucket counts."""
        return quantile_from_cumulative(q, self.cumulative())


def escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text-format rules.

    Backslash, double-quote, and newline are the three characters the
    exposition format requires escaping inside ``key="value"`` — a raw
    one of any would produce an unparseable series name.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def series_name(name: str, labels: dict[str, object]) -> str:
    """``name{key="value",...}`` with keys sorted for determinism and
    values escaped per the Prometheus text-format rules."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def _sanitize(name: str) -> str:
    """Prometheus metric names: dots and other punctuation to underscores."""
    base, brace, labels = name.partition("{")
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in base)
    return cleaned + brace + labels


class Registry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- series accessors (create on first use) -------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter()
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge()
        return found

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(buckets=buckets)
        return found

    # -- recording helpers (one call per instrumentation site) ----------

    def inc(self, name: str, amount: int = 1, **labels: object) -> None:
        # Inlined counter() + Counter.inc(): this is the hottest call in
        # an instrumented simulation, and the two extra frames showed up.
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter()
        if amount < 0:
            raise ValueError("counters only go up")
        found.value += amount
        if labels:
            self.counter(series_name(name, labels)).inc(amount)

    def gauge_set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def gauge_max(self, name: str, value: float) -> None:
        self.gauge(name).set_max(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> None:
        found = self._histograms.get(name)  # inlined, as in inc()
        if found is None:
            found = self._histograms[name] = Histogram(buckets=buckets)
        found.counts[bisect.bisect_left(found.buckets, value)] += 1
        found.total += value
        found.count += 1
        if labels:
            self.histogram(series_name(name, labels), buckets).observe(value)

    # -- export ---------------------------------------------------------

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict:
        """A deterministic JSON-able view of every series."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histogram_snapshot(hist)
                for name, hist in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def _histogram_snapshot(hist: Histogram) -> dict:
        cumulative = hist.cumulative()
        snap = {
            "count": hist.count,
            "sum": hist.total,
            "mean": hist.mean,
            "buckets": [[edge, cum] for edge, cum in cumulative],
        }
        for q in SNAPSHOT_QUANTILES:
            snap[f"p{round(q * 100)}"] = quantile_from_cumulative(q, cumulative)
        return snap

    def render_text(self) -> str:
        """Prometheus-style text exposition of every series."""
        lines: list[str] = []
        for name in sorted(self._counters):
            clean = _sanitize(name)
            if "{" not in clean:
                lines.append(f"# TYPE {clean} counter")
            lines.append(f"{clean} {self._counters[name].value}")
        for name in sorted(self._gauges):
            clean = _sanitize(name)
            if "{" not in clean:
                lines.append(f"# TYPE {clean} gauge")
            lines.append(f"{clean} {self._gauges[name].value}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            clean = _sanitize(name)
            base, brace, labels = clean.partition("{")
            label_prefix = "," if brace else "{"
            label_body = labels[:-1] if brace else ""
            if not brace:
                lines.append(f"# TYPE {base} histogram")
            for edge, cum in hist.cumulative():
                le = f'le="{edge}"'
                if brace:
                    lines.append(f"{base}{{{label_body},{le}}} {cum}")
                else:
                    lines.append(f"{base}_bucket{{{le}}} {cum}")
            suffix = f"{{{label_body}}}" if brace else ""
            lines.append(f"{base}_sum{suffix} {hist.total}")
            lines.append(f"{base}_count{suffix} {hist.count}")
            # Summary-style interpolated quantiles next to the raw buckets.
            for q in SNAPSHOT_QUANTILES:
                quant = f'quantile="{q}"'
                value = hist.quantile(q)
                if brace:
                    lines.append(f"{base}{{{label_body},{quant}}} {value}")
                else:
                    lines.append(f"{base}{{{quant}}} {value}")
        return "\n".join(lines) + "\n"
