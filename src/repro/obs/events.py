"""Structured event log: schema-versioned JSONL pipeline events.

Metrics answer "how many / how long"; the event log answers "what
happened, in order".  Each event is one JSON object with a fixed
envelope — schema version, monotonically increasing sequence number,
clock timestamp, kind — plus kind-specific payload fields under
``data``.  The kind catalogue (:data:`EVENT_KINDS`) names every event
the instrumented pipeline can emit and the payload fields each is
required to carry, so a consumer can validate any line of a dump
against :func:`validate_event` without knowing who produced it.

Events land in a bounded ring (oldest dropped first, with a drop
counter) so a long simulation cannot grow memory without limit, and an
optional file sink streams each event as a JSONL line the moment it is
emitted — the sink sees every event even when the ring has wrapped.

Like the rest of :mod:`repro.obs`, the log is storage only: call sites
guard on ``obs.ENABLED`` and never reach it on a disabled run (the
poisoned-log test enforces this).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, IO

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "SUPPORTED_EVENT_SCHEMA_VERSIONS",
    "EVENT_KINDS",
    "EVENT_KINDS_SINCE_V2",
    "EVENT_KINDS_SINCE_V3",
    "EVENT_KINDS_SINCE_V4",
    "Event",
    "EventLog",
    "EventSchemaError",
    "validate_event",
]

# Bump when the envelope or a kind's required fields change shape.
# v2 added the swarm-telemetry kinds (relay.hop, monitor.violation,
# node.crash); v3 added the verification-service kinds (service.*,
# script.pool_broken); v4 added the compact-relay kinds (compact.*).
# The envelope is unchanged throughout, so older dumps still validate.
EVENT_SCHEMA_VERSION = 4
SUPPORTED_EVENT_SCHEMA_VERSIONS = (1, 2, 3, 4)

# kind -> required payload field names.  Emitting an unknown kind or
# omitting a required field raises immediately: a typo at a call site
# should fail the instrumented run, not silently corrupt dumps.
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    "tx.accepted": ("txid", "fee", "size"),
    "tx.rejected": ("txid", "reason"),
    "block.connected": ("hash", "height", "txs"),
    "block.disconnected": ("hash", "height"),
    "chain.reorg": ("depth", "fork_height"),
    "orphan.parked": ("hash", "parent"),
    "orphan.resolved": ("hash", "parent"),
    "proof.checked": ("outcome",),
    "script.budget_exhausted": ("reason",),
    "pow.retarget": ("old_target", "new_target", "ratio"),
    # Chaos layer: fault injection on links, partitions, crashes.
    "fault.drop": ("edge", "msg"),
    "fault.duplicate": ("edge", "msg"),
    "fault.delay": ("edge", "msg", "extra"),
    "fault.partition": ("groups",),
    "fault.heal": ("groups",),
    "fault.crash": ("node",),
    "fault.restart": ("node", "persisted"),
    # Headers-first catch-up sync after reconnect / missed relays.
    "sync.started": ("node", "peer", "reason"),
    "sync.headers": ("node", "peer", "count"),
    "sync.request": ("node", "peer", "what", "attempt"),
    "sync.timeout": ("node", "peer", "what", "attempt"),
    "sync.completed": ("node", "peer", "blocks"),
    "sync.failed": ("node", "peer", "reason"),
    # Misbehavior scoring and rejected blocks (chaos satellite tasks).
    "block.rejected": ("hash", "reason"),
    "peer.misbehavior": ("node", "peer", "points", "score", "reason"),
    "peer.banned": ("node", "peer", "score"),
    "orphan.evicted": ("hash", "parent"),
    "seen.evicted": ("node", "pool", "count"),
    # Durable block store: snapshots, torn-tail truncation, recovery.
    "store.snapshot": ("height", "tip", "bytes"),
    "store.truncated": ("path", "bytes"),
    "store.recovered": ("height", "tip", "blocks", "from_snapshot"),
    # Mempool re-injection of losing-branch transactions after a reorg.
    "mempool.reinjected": ("count", "depth"),
    # Torn-write fault: the tail of a log damaged at a seeded offset.
    "fault.torn_write": ("node", "file", "mode", "bytes"),
    # --- schema v2: swarm telemetry ---
    # One block/tx delivery hop: the propagation tree is reconstructable
    # from these alone (first-seen latency, redundant receives).
    "relay.hop": ("trace", "from", "to", "hop", "sim_time"),
    # A runtime invariant monitor detected a violated invariant.
    "monitor.violation": ("monitor", "detail"),
    # A node crashed with this many spans still open on its tracer.
    "node.crash": ("node", "open_spans"),
    # Supply-inflation fault injection (monitor acceptance scenario).
    "fault.inflation": ("node", "amount"),
    # --- schema v3: fault-tolerant verification service ---
    # One request's terminal verdict (the full status set is documented
    # in docs/service.md: ok/invalid/timeout/overloaded/draining/error).
    "service.verdict": ("status", "degraded"),
    # The circuit breaker changed state (closed/open/half_open).
    "service.breaker_transition": ("state",),
    # The worker pool died and was respawned; `pending` jobs re-dispatch.
    "service.pool_respawn": ("pending",),
    # A memoized typecheck entry failed its digest check and was evicted.
    "service.poison_rejected": ("txid",),
    # Admission control refused a request (queue full / draining).
    "service.shed": ("inflight", "reason"),
    # A request was served on the degraded (serial, cache-off) path.
    "service.degraded": ("reason",),
    # The block-connect script pool broke; verification fell back serial.
    "script.pool_broken": ("groups",),
    # --- schema v4: compact block relay (BIP 152-style) ---
    # A compact announcement arrived: total txs, mempool misses.
    "compact.received": ("node", "hash", "txs", "missing"),
    # The receiver round-tripped for the missing transactions.
    "compact.getblocktxn": ("node", "peer", "hash", "indexes"),
    # Reconstruction was abandoned for a full-block fetch (collision,
    # merkle mismatch, or round-trip timeout — never peer misbehavior).
    "compact.fallback": ("node", "hash", "reason"),
    # The announcing peer failed to back its announcement with data.
    "compact.withheld": ("node", "peer", "hash"),
}

# Kinds that did not exist before schema v2: a v1 event claiming one of
# these is malformed (no v1 writer ever produced them), so a consumer
# can flag a corrupted or hand-edited dump early.
EVENT_KINDS_SINCE_V2 = frozenset(
    {"relay.hop", "monitor.violation", "node.crash", "fault.inflation"}
)

# Likewise for schema v3 (the verification-service kinds).
EVENT_KINDS_SINCE_V3 = frozenset(
    {
        "service.verdict",
        "service.breaker_transition",
        "service.pool_respawn",
        "service.poison_rejected",
        "service.shed",
        "service.degraded",
        "script.pool_broken",
    }
)

# Likewise for schema v4 (the compact-relay kinds).
EVENT_KINDS_SINCE_V4 = frozenset(
    {
        "compact.received",
        "compact.getblocktxn",
        "compact.fallback",
        "compact.withheld",
    }
)


class EventSchemaError(ValueError):
    """An event does not conform to the documented schema."""


# Exact types that pass through json.dumps unchanged; the emit hot path
# checks membership before paying a _jsonable call per payload field.
_JSON_SAFE = frozenset({str, int, float, bool, type(None)})


def _jsonable(value: object) -> object:
    """Coerce payload values to JSON-safe types (bytes become hex)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    return str(value)


class Event:
    """One recorded event: envelope plus kind-specific payload."""

    __slots__ = ("seq", "ts", "kind", "data")

    def __init__(self, seq: int, ts: float, kind: str, data: dict):
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.data = data

    def as_dict(self) -> dict:
        return {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(seq={self.seq}, kind={self.kind!r}, data={self.data!r})"


def validate_event(obj: dict) -> None:
    """Raise :class:`EventSchemaError` unless ``obj`` is a valid event dict.

    Checks the envelope (``v``/``seq``/``ts``/``kind``/``data``), that the
    kind is catalogued, and that every required payload field is present.
    """
    if not isinstance(obj, dict):
        raise EventSchemaError(f"event must be an object, got {type(obj).__name__}")
    for key in ("v", "seq", "ts", "kind", "data"):
        if key not in obj:
            raise EventSchemaError(f"missing envelope field {key!r}")
    if obj["v"] not in SUPPORTED_EVENT_SCHEMA_VERSIONS:
        raise EventSchemaError(
            f"schema version {obj['v']!r} not in "
            f"{SUPPORTED_EVENT_SCHEMA_VERSIONS}"
        )
    if not isinstance(obj["seq"], int) or obj["seq"] < 0:
        raise EventSchemaError(f"seq must be a non-negative int, got {obj['seq']!r}")
    if not isinstance(obj["ts"], (int, float)):
        raise EventSchemaError(f"ts must be a number, got {obj['ts']!r}")
    kind = obj["kind"]
    required = EVENT_KINDS.get(kind)
    if required is None:
        raise EventSchemaError(f"unknown event kind {kind!r}")
    if obj["v"] < 2 and kind in EVENT_KINDS_SINCE_V2:
        raise EventSchemaError(
            f"kind {kind!r} was introduced in schema v2 "
            f"but the event claims v{obj['v']}"
        )
    if obj["v"] < 3 and kind in EVENT_KINDS_SINCE_V3:
        raise EventSchemaError(
            f"kind {kind!r} was introduced in schema v3 "
            f"but the event claims v{obj['v']}"
        )
    if obj["v"] < 4 and kind in EVENT_KINDS_SINCE_V4:
        raise EventSchemaError(
            f"kind {kind!r} was introduced in schema v4 "
            f"but the event claims v{obj['v']}"
        )
    data = obj["data"]
    if not isinstance(data, dict):
        raise EventSchemaError("data must be an object")
    missing = [name for name in required if name not in data]
    if missing:
        raise EventSchemaError(f"{kind}: missing payload fields {missing}")


class EventLog:
    """Bounded in-memory event ring with an optional streaming JSONL sink."""

    def __init__(
        self,
        capacity: int = 10_000,
        clock: Callable[[], float] = time.perf_counter,
        sink: IO[str] | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.clock = clock
        self.sink = sink
        self.events: deque[Event] = deque(maxlen=capacity)
        self.dropped = 0
        self._next_seq = 0

    def emit(self, kind: str, **fields: object) -> Event:
        """Record one event; returns it (mainly for tests).

        Raises :class:`EventSchemaError` for an uncatalogued kind or a
        missing required payload field.
        """
        required = EVENT_KINDS.get(kind)
        if required is None:
            raise EventSchemaError(f"unknown event kind {kind!r}")
        for name in required:  # no list alloc on the happy path
            if name not in fields:
                missing = [n for n in required if n not in fields]
                raise EventSchemaError(
                    f"{kind}: missing payload fields {missing}"
                )
        data = {
            key: value if type(value) in _JSON_SAFE else _jsonable(value)
            for key, value in fields.items()
        }
        event = Event(self._next_seq, self.clock(), kind, data)
        self._next_seq += 1
        if len(self.events) == self.capacity:
            self.dropped += 1  # deque(maxlen) evicts the oldest on append
        self.events.append(event)
        if self.sink is not None:
            self.sink.write(event.to_json() + "\n")
        return event

    def append(self, event: Event) -> Event:
        """Mirror an already-validated event into this ring.

        The scoped-emit fast path: the global log builds and validates
        the :class:`Event` once, and the node's private ring shares the
        same object (same seq, ts, payload) instead of re-validating and
        re-allocating.  Keeps ``_next_seq`` ahead of the mirrored seq so
        direct emits into this ring stay monotone.
        """
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        if event.seq >= self._next_seq:
            self._next_seq = event.seq + 1
        if self.sink is not None:
            self.sink.write(event.to_json() + "\n")
        return event

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._next_seq = 0

    def snapshot(self) -> list[dict]:
        """JSON-able view of the retained events, oldest first."""
        return [event.as_dict() for event in self.events]

    def to_jsonl(self) -> str:
        """The retained events as JSONL text (one event per line)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def write_jsonl(self, path: str) -> int:
        """Dump the retained events to ``path``; returns the event count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self.events)
