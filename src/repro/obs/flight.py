"""Crash flight recorder: dump the last moments of telemetry on failure.

The bounded rings in :mod:`repro.obs` already hold "the recent past" —
the last few thousand events and spans per node plus the process-wide
aggregate.  The flight recorder turns that into a post-mortem artifact:
when something goes wrong (a :class:`~repro.bitcoin.validation.
ValidationError` on block connect, an invariant-monitor violation, a
simulated node crash), :func:`trigger` writes one correlated bundle
directory and stops after ``max_dumps`` so a failure storm cannot fill
the disk.

Bundle layout (``<directory>/flight-<seq>-<reason>/``):

``MANIFEST.json``
    reason, dump sequence number, optional ``sim_time``, the node names
    captured, and each node's open-span count at the moment of dump.
``events.jsonl``
    The process-wide event ring as JSONL (one validated event per line).
``node-<name>.events.jsonl``
    Each captured node's private event ring.
``trace.json``
    A swarm Chrome trace (per-node ``pid`` tracks plus the global
    ``repro`` track) — loads directly in Perfetto.
``snapshot.json``
    The merged :func:`repro.obs.swarm.swarm_snapshot` plus the global
    :func:`repro.obs.snapshot`.

The recorder is **disarmed by default**: :func:`trigger` is a cheap
no-op until :func:`configure` gives it a directory.  Trigger points are
rare paths (rejects, violations, crashes), so the lazy imports there
cost nothing in the steady state.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = ["FlightRecorder", "configure", "disarm", "recorder", "trigger"]

FLIGHT_SCHEMA = "repro.obs.flight/1"


def _slug(reason: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", reason).strip("-") or "unknown"


class FlightRecorder:
    """Writes correlated telemetry bundles; armed only with a directory."""

    def __init__(
        self,
        directory: str | Path | None = None,
        max_dumps: int = 4,
    ):
        self.directory = Path(directory) if directory is not None else None
        self.max_dumps = max_dumps
        self.dumps = 0
        self.nodes: list = []  # node-like objects (see swarm.telemetry_of)
        self.sim = None  # optional Simulation for sim_time stamps

    @property
    def armed(self) -> bool:
        return self.directory is not None and self.dumps < self.max_dumps

    def attach(self, nodes: list, sim=None) -> None:
        """Register the swarm whose telemetry a dump should capture."""
        self.nodes = list(nodes)
        self.sim = sim

    def trigger(self, reason: str, sim_time: float | None = None) -> Path | None:
        """Dump one bundle (no-op when disarmed); returns its directory."""
        if not self.armed:
            return None
        from repro import obs
        from repro.obs.export import write_swarm_chrome_trace
        from repro.obs.swarm import swarm_snapshot, telemetry_of

        if sim_time is None and self.sim is not None:
            sim_time = getattr(self.sim, "now", None)

        seq = self.dumps
        self.dumps += 1
        bundle = self.directory / f"flight-{seq:03d}-{_slug(reason)}"
        bundle.mkdir(parents=True, exist_ok=True)

        global_snap = obs.snapshot()
        swarm_snap = swarm_snapshot(self.nodes)

        obs.events().write_jsonl(str(bundle / "events.jsonl"))
        open_spans: dict[str, int] = {"repro": len(obs.tracer()._open)}
        for node in self.nodes:
            telemetry = telemetry_of(node)
            if telemetry is None:
                continue
            telemetry.events.write_jsonl(
                str(bundle / f"node-{telemetry.name}.events.jsonl")
            )
            open_spans[telemetry.name] = len(telemetry.tracer._open)

        write_swarm_chrome_trace(
            str(bundle / "trace.json"), swarm_snap, global_snapshot=global_snap
        )
        with open(bundle / "snapshot.json", "w", encoding="utf-8") as handle:
            json.dump(
                {"global": global_snap, "swarm": swarm_snap},
                handle,
                sort_keys=True,
            )

        manifest = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "seq": seq,
            "sim_time": sim_time,
            "nodes": sorted(
                name for name in open_spans if name != "repro"
            ),
            "open_spans": dict(sorted(open_spans.items())),
        }
        with open(bundle / "MANIFEST.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)

        if obs.ENABLED:
            obs.inc("flight.dumps_total")
        return bundle


# The process-wide recorder, disarmed until configure() names a directory.
_recorder = FlightRecorder()


def recorder() -> FlightRecorder:
    return _recorder


def configure(
    directory: str | Path,
    max_dumps: int = 4,
    nodes: list | None = None,
    sim=None,
) -> FlightRecorder:
    """Arm the process-wide recorder; returns it for chaining."""
    _recorder.directory = Path(directory)
    _recorder.max_dumps = max_dumps
    _recorder.dumps = 0
    if nodes is not None:
        _recorder.attach(nodes, sim=sim)
    return _recorder


def disarm() -> None:
    """Return the process-wide recorder to its inert default state."""
    _recorder.directory = None
    _recorder.dumps = 0
    _recorder.nodes = []
    _recorder.sim = None


def trigger(reason: str, sim_time: float | None = None) -> Path | None:
    """Dump a bundle from the process-wide recorder (no-op when disarmed)."""
    return _recorder.trigger(reason, sim_time=sim_time)
