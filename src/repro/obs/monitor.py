"""Runtime invariant monitors: cheap sampled checks on live state.

Tests assert invariants after the fact; monitors assert them *while the
simulation runs*, at block connect/disconnect and chaos-scenario
boundaries, so a violation is caught within one block of the bug that
caused it — with the flight recorder (:mod:`repro.obs.flight`) still
holding the events that led up to it.

The catalogue (each named like the metric label it reports under):

``supply``
    UTXO value conservation: the sum of all unspent output values never
    exceeds the cumulative subsidy schedule for the active height.  An
    inequality, not an equality — OP_RETURN burns and under-claimed
    coinbases destroy value legitimately; *creating* value is the bug.
``tip_work``
    Chain-work monotonicity of the active tip: ``add_block`` may only
    ever move the tip to equal-or-greater cumulative work.  Checked at
    the *end* of ``add_block`` (never mid-reorg, where intermediate
    connects legitimately sit below the old tip's work).
``mempool_disjoint``
    Every outpoint a pooled transaction spends is still unspent in the
    chain's UTXO set (chained unconfirmed spends are unsupported, so
    any miss means the pool holds a conflicted transaction).
``store_offsets``
    The durable store's manifest snapshot offsets stay within the bytes
    actually written to the block/undo logs.

Checks run sampled (every ``sample_interval``-th call per monitor) so
the instrumented hot path stays cheap; ``force=True`` bypasses the
sampler at scenario boundaries.  In normal mode a violation counts —
``monitor.violations_total`` plus a ``monitor.violation`` event plus a
flight-recorder trigger — and the run continues; in strict mode it
raises :class:`InvariantViolation` so tests fail at the exact block.

Like the rest of :mod:`repro.obs`, call sites guard on ``obs.ENABLED``:
a disabled run never reaches the monitors.
"""

from __future__ import annotations

__all__ = [
    "InvariantViolation",
    "MonitorRegistry",
    "cumulative_subsidy",
    "monitors",
    "set_monitors",
]


class InvariantViolation(AssertionError):
    """A runtime invariant monitor found live state that cannot happen."""


def cumulative_subsidy(height: int) -> int:
    """Maximum satoshis in existence once block ``height`` is connected.

    Closed-form sum of :func:`repro.bitcoin.chain.block_subsidy` over
    heights ``0..height`` (the genesis coinbase counts: it sits in the
    UTXO set even though it is unspendable by convention).
    """
    from repro.bitcoin.chain import HALVING_INTERVAL, INITIAL_SUBSIDY

    total = 0
    remaining = height + 1
    era = 0
    while remaining > 0 and era < 64:
        in_era = min(remaining, HALVING_INTERVAL)
        total += in_era * (INITIAL_SUBSIDY >> era)
        remaining -= in_era
        era += 1
    return total


class MonitorRegistry:
    """The monitor switchboard: sampling, counting, and strictness.

    ``enabled`` gates everything (monitors are opt-in even on an
    instrumented run, so benchmark trajectories stay comparable);
    ``strict`` turns violations into raises; ``sample_interval=N`` runs
    each named check on every N-th call (1 = every call).
    """

    def __init__(
        self,
        enabled: bool = False,
        strict: bool = False,
        sample_interval: int = 16,
    ):
        self.enabled = enabled
        self.strict = strict
        self.sample_interval = max(1, sample_interval)
        self.checks_run = 0
        self.violations: list[tuple[str, str]] = []
        self._calls: dict[str, int] = {}

    def configure(
        self,
        enabled: bool = True,
        strict: bool = False,
        sample_interval: int | None = None,
    ) -> "MonitorRegistry":
        self.enabled = enabled
        self.strict = strict
        if sample_interval is not None:
            self.sample_interval = max(1, sample_interval)
        return self

    def reset(self) -> None:
        self.checks_run = 0
        self.violations.clear()
        self._calls.clear()

    # ------------------------------------------------------------------
    # Core machinery
    # ------------------------------------------------------------------

    def _sampled(self, name: str, force: bool) -> bool:
        """Whether this call of monitor ``name`` should actually check."""
        if not self.enabled:
            return False
        if force:
            return True
        count = self._calls.get(name, 0)
        self._calls[name] = count + 1
        return count % self.sample_interval == 0

    def _ran(self) -> None:
        from repro import obs

        self.checks_run += 1
        obs.inc("monitor.checks_total")

    def violate(self, name: str, detail: str) -> None:
        """Record one violation; raises in strict mode."""
        from repro import obs
        from repro.obs import flight

        self.violations.append((name, detail))
        obs.inc("monitor.violations_total")
        obs.emit("monitor.violation", monitor=name, detail=detail)
        flight.trigger(f"monitor.{name}")
        if self.strict:
            raise InvariantViolation(f"{name}: {detail}")

    # ------------------------------------------------------------------
    # The checks
    # ------------------------------------------------------------------

    def check_supply(self, chain, force: bool = False) -> bool:
        """UTXO value conservation against the subsidy schedule."""
        if not self._sampled("supply", force):
            return True
        self._ran()
        total = chain.utxos.total_value()
        ceiling = cumulative_subsidy(chain.height)
        if total > ceiling:
            self.violate(
                "supply",
                f"UTXO value {total} exceeds cumulative subsidy "
                f"{ceiling} at height {chain.height}",
            )
            return False
        return True

    def check_tip_work(self, chain, force: bool = False) -> bool:
        """Chain-work monotonicity of the active tip across add_block."""
        if not self.enabled:
            return True
        # Never sampled away: the check is one integer compare, and a
        # missed regression here cannot be caught later (the attribute
        # would have already advanced).
        self._ran()
        work = chain.tip.chain_work
        last = getattr(chain, "_monitor_tip_work", None)
        chain._monitor_tip_work = work
        if last is not None and work < last:
            self.violate(
                "tip_work",
                f"active tip work regressed {last} -> {work} "
                f"at height {chain.height}",
            )
            return False
        return True

    def check_mempool_disjoint(self, node, force: bool = False) -> bool:
        """Pooled spends must target outpoints still unspent on chain."""
        if not self._sampled("mempool_disjoint", force):
            return True
        self._ran()
        chain = node.chain
        for outpoint in node.mempool.spent_outpoints():
            if chain.utxos.get(outpoint) is None:
                self.violate(
                    "mempool_disjoint",
                    f"{node.name}: mempool spends {outpoint} which is "
                    f"not unspent in the UTXO set",
                )
                return False
        return True

    def check_store_offsets(self, node, force: bool = False) -> bool:
        """Manifest snapshot offsets stay within the written log bytes."""
        store = getattr(node.chain, "store", None)
        if store is None:
            return True
        if not self._sampled("store_offsets", force):
            return True
        self._ran()
        if not store.snapshot_offsets_consistent():
            self.violate(
                "store_offsets",
                f"{node.name}: manifest snapshot offsets exceed the "
                f"block/undo log tails",
            )
            return False
        return True

    def check_node(self, node, force: bool = False) -> bool:
        """Every per-node invariant at once (chaos-scenario boundaries)."""
        ok = self.check_supply(node.chain, force=force)
        ok = self.check_mempool_disjoint(node, force=force) and ok
        ok = self.check_store_offsets(node, force=force) and ok
        return ok


# The process-wide monitor registry, disabled by default.  Swapped by
# tests the same way the metrics registry is.
_monitors = MonitorRegistry()


def monitors() -> MonitorRegistry:
    return _monitors


def set_monitors(registry: MonitorRegistry) -> MonitorRegistry:
    global _monitors
    previous = _monitors
    _monitors = registry
    return previous
