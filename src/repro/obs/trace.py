"""A span-based tracer: nested wall-time regions with attributes.

``trace_span("chain.connect_block", height=h)`` opens a span; on exit the
span records its wall time, its parent (the span that was open when it
started), and its key/value attributes.  Span ids are assigned at entry so
children can name their parent even though parents finish last.  Finished
spans land in a bounded ring so a long simulation cannot grow memory
without limit, and a span may optionally feed its duration into a registry
histogram (``metric=...``) so tracing and metrics stay in sync at one call
site.

The tracer trusts the clock it is given for time, which tests replace with
a fake clock to get deterministic spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.metrics import Registry


@dataclass
class Span:
    """One finished traced region."""

    span_id: int
    name: str
    start: float
    duration: float
    depth: int
    parent: int | None  # span_id of the enclosing span, if any
    attrs: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Collects finished spans, keeping at most ``max_spans`` of them."""

    def __init__(self, max_spans: int = 10_000):
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._open: list[_ActiveSpan] = []
        self._next_id = 0

    def record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()
        self._open.clear()
        self.dropped = 0
        self._next_id = 0

    def abandon_open(self) -> int:
        """Discard any still-open spans; returns how many were dropped.

        A crashed node's in-flight spans must not become parents of
        post-restart spans — the process they belonged to is gone.
        """
        count = len(self._open)
        self._open.clear()
        return count

    def snapshot(self) -> list[dict]:
        return [span.as_dict() for span in self.spans]


class _ActiveSpan:
    """Context manager for one open span (created only when enabled)."""

    __slots__ = ("tracer", "registry", "clock", "name", "metric", "attrs",
                 "span_id", "parent", "depth", "start", "extra_registry",
                 "profiler")

    def __init__(
        self,
        tracer: Tracer,
        registry: Registry,
        clock: Callable[[], float],
        name: str,
        metric: str | None,
        attrs: dict[str, object],
        extra_registry: Registry | None = None,
        profiler=None,
    ):
        self.tracer = tracer
        self.registry = registry
        self.clock = clock
        self.name = name
        self.metric = metric
        self.attrs = attrs
        self.extra_registry = extra_registry
        self.profiler = profiler
        self.span_id = -1
        self.parent: int | None = None
        self.depth = 0
        self.start = 0.0

    def __enter__(self) -> "_ActiveSpan":
        stack = self.tracer._open
        self.span_id = self.tracer._next_id
        self.tracer._next_id += 1
        self.parent = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        if self.profiler is not None:
            self.profiler.span_enter(self.name)
        self.start = self.clock()
        return self

    def set_attr(self, key: str, value: object) -> None:
        """Attach an attribute discovered mid-span."""
        self.attrs[key] = value

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self.clock() - self.start
        if self.profiler is not None:
            self.profiler.span_exit()
        stack = self.tracer._open
        # Tolerate a child that leaked (e.g. an exception skipped its exit).
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer.record(
            Span(
                span_id=self.span_id,
                name=self.name,
                start=self.start,
                duration=duration,
                depth=self.depth,
                parent=self.parent,
                attrs=self.attrs,
            )
        )
        if self.metric is not None:
            self.registry.observe(self.metric, duration)
            if self.extra_registry is not None:
                self.extra_registry.observe(self.metric, duration)
