"""A zero-dependency HTTP exporter for live metric and profile scraping.

Long-running simulations (the swarm harness, soak runs of the benchmark
suite) accumulate counters, histograms, and phase ledgers that until now
could only be inspected post-mortem from a written snapshot.  This module
serves them live over plain ``http.server`` — no third-party client
libraries, matching the repo's no-new-dependencies rule — so a Prometheus
scraper, ``curl``, or a browser can watch a run in flight.

Endpoints
---------

``/metrics``
    Prometheus text exposition (version 0.0.4) of the default registry,
    followed by per-phase profiler series when a profiler is installed:
    ``repro_phase_self_seconds{phase="..."}``,
    ``repro_phase_calls_total{phase="..."}`` and, when allocation
    tracking is on, ``repro_phase_alloc_bytes{phase="..."}``.

``/snapshot.json``
    The full :func:`repro.obs.snapshot` dict (series, spans, events) plus
    a ``"profile"`` section when a profiler is installed, serialized with
    sorted keys so two scrapes of identical state are byte-identical.

``/profile.folded``
    Collapsed-stack output of the attached :class:`StackSampler`
    (speedscope / flamegraph.pl format).  404 when no sampler is
    attached.

``/healthz``
    Liveness and readiness as JSON: 200 while serving, 503 once a drain
    has begun (load balancers stop routing on the flip, in-flight
    scrapes finish).  An optional ``health_source`` callback (e.g.
    :meth:`repro.service.VerificationService.health`) merges
    application-level readiness into the payload — a report of
    ``ready: false`` also turns the response 503.

The server runs on a daemon thread.  :meth:`ObsServer.close` drains by
default: requests already being handled are finished (bounded wait)
while new connections stop being accepted; ``drain=False`` restores the
old abrupt behavior where handler threads are abandoned mid-reply.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.obs.metrics import escape_label_value

__all__ = ["ObsServer", "render_phase_text", "PROMETHEUS_CONTENT_TYPE"]

# The content type Prometheus' scraper expects for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_phase_text(profile: dict) -> str:
    """Prometheus text lines for one profiler snapshot's phase ledger."""
    phases = profile.get("phases") or {}
    if not phases:
        return ""
    lines = ["# TYPE repro_phase_self_seconds gauge"]
    for phase in sorted(phases):
        label = f'phase="{escape_label_value(phase)}"'
        lines.append(
            f"repro_phase_self_seconds{{{label}}}"
            f" {phases[phase]['seconds']:.9f}"
        )
    lines.append("# TYPE repro_phase_calls_total counter")
    for phase in sorted(phases):
        label = f'phase="{escape_label_value(phase)}"'
        lines.append(
            f"repro_phase_calls_total{{{label}}} {phases[phase]['calls']}"
        )
    if any("alloc_bytes" in entry for entry in phases.values()):
        lines.append("# TYPE repro_phase_alloc_bytes gauge")
        for phase in sorted(phases):
            entry = phases[phase]
            if "alloc_bytes" in entry:
                label = f'phase="{escape_label_value(phase)}"'
                lines.append(
                    f"repro_phase_alloc_bytes{{{label}}}"
                    f" {entry['alloc_bytes']}"
                )
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    # The server instance injects itself as ``obs_server`` on the class
    # via a per-server subclass; see ObsServer.__init__.
    obs_server: "ObsServer"

    # Keep scrapes quiet: BaseHTTPRequestHandler logs to stderr by default.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        server = self.obs_server
        with server._inflight_cv:
            server._inflight += 1
        try:
            self._dispatch()
        finally:
            with server._inflight_cv:
                server._inflight -= 1
                server._inflight_cv.notify_all()

    def _dispatch(self) -> None:
        path = self.path.partition("?")[0]
        if path == "/metrics":
            self._reply(200, PROMETHEUS_CONTENT_TYPE, self.obs_server.metrics_text())
        elif path == "/snapshot.json":
            self._reply(
                200,
                "application/json; charset=utf-8",
                self.obs_server.snapshot_json(),
            )
        elif path == "/profile.folded":
            folded = self.obs_server.folded_text()
            if folded is None:
                self._reply(404, "text/plain; charset=utf-8", "no sampler attached\n")
            else:
                self._reply(200, "text/plain; charset=utf-8", folded)
        elif path == "/healthz":
            status, body = self.obs_server.healthz()
            self._reply(status, "application/json; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", "not found\n")

    def _reply(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-reply; nothing to clean up


class ObsServer:
    """Serve the live observability state over HTTP.

    ``port=0`` (the default) binds an ephemeral port; read :attr:`port`
    after construction.  The serving thread and all handler threads are
    daemonic, so a process exit never hangs on an open scrape.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, health_source=None
    ):
        self.health_source = health_source
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        self._draining = False
        # A per-instance handler subclass so concurrent servers in tests
        # don't share state through the class attribute.
        handler = type("_BoundHandler", (_Handler,), {"obs_server": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        # Don't wait for in-flight handler threads at shutdown; close()
        # must return promptly even mid-request.
        self._httpd.block_on_close = False
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-obs-serve-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- content builders (separated from HTTP plumbing for testing) -----

    def metrics_text(self) -> str:
        text = obs.render_text()
        prof = obs.profiler()
        if prof is not None:
            text += render_phase_text(prof.snapshot())
        return text

    def snapshot_json(self) -> str:
        snap = obs.snapshot()
        prof = obs.profiler()
        if prof is not None:
            snap["profile"] = prof.snapshot()
        return json.dumps(snap, sort_keys=True) + "\n"

    def folded_text(self) -> str | None:
        sampler = getattr(obs, "SAMPLER", None)
        if sampler is None:
            return None
        folded = sampler.folded()
        return folded + "\n" if folded and not folded.endswith("\n") else folded

    def healthz(self) -> tuple[int, str]:
        """The `/healthz` response: (HTTP status, JSON body).

        Readiness is the conjunction of the exporter's own state (not
        draining) and whatever the attached ``health_source`` reports;
        its fields are merged into the payload so one scrape shows both
        the exporter and the application view.
        """
        with self._inflight_cv:
            payload = {
                "ready": not self._draining,
                "draining": self._draining,
                "inflight": self._inflight,
            }
        if self.health_source is not None:
            app = dict(self.health_source())
            app_ready = bool(app.pop("ready", True))
            app.pop("inflight", None)  # the exporter's count wins
            payload.update(app)
            payload["ready"] = payload["ready"] and app_ready
            payload["draining"] = payload["draining"] or app.get(
                "draining", False
            )
        status = 200 if payload["ready"] else 503
        return status, json.dumps(payload, sort_keys=True) + "\n"

    def close(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop serving; safe to call with a request in flight.

        With ``drain=True`` (the default) the server first flips
        `/healthz` to 503, stops accepting connections, then waits up to
        ``timeout`` seconds for requests already being handled to write
        their replies — a scrape racing the shutdown completes instead
        of dying on a reset socket.  ``drain=False`` skips the wait.
        """
        with self._inflight_cv:
            self._draining = True
        self._httpd.shutdown()
        if drain:
            with self._inflight_cv:
                self._inflight_cv.wait_for(
                    lambda: self._inflight == 0, timeout=timeout
                )
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
